"""Regression tests for the DET001 fixes: no silent entropy streams.

``make_rng(seed=None)`` used to hand back an *unseeded* generator and
``MeshOverlay`` fell back to a raw ``np.random.default_rng(0)`` outside
the named-stream mechanism — the two real findings the determinism
linter flagged on day one.  These tests pin the fixed contract:
``None`` falls back deterministically to seed 0, OS entropy is an
explicit opt-in via the ``ENTROPY`` sentinel, and two
default-constructed overlays make identical neighbor choices.
"""

import numpy as np

from repro.sim.rng import ENTROPY, RandomStreams, make_rng
from repro.vod.overlay import MeshOverlay


class TestSeedNoneFallback:
    def test_none_equals_seed_zero(self):
        a = make_rng(None, "workload", "arrivals")
        b = make_rng(0, "workload", "arrivals")
        assert np.array_equal(a.random(64), b.random(64))

    def test_none_is_reproducible_across_calls(self):
        draws = [make_rng(None, "x").random(16) for _ in range(2)]
        assert np.array_equal(draws[0], draws[1])

    def test_streams_registry_with_none_seed(self):
        a = RandomStreams(None).get("arrivals").random(16)
        b = RandomStreams(0).get("arrivals").random(16)
        assert np.array_equal(a, b)

    def test_spawn_with_none_seed_is_deterministic(self):
        a = RandomStreams(None).spawn("child")
        b = RandomStreams(None).spawn("child")
        assert a.seed == b.seed
        assert np.array_equal(a.get("s").random(8), b.get("s").random(8))


class TestEntropyOptIn:
    def test_entropy_returns_working_generator(self):
        rng = make_rng(ENTROPY, "explore")
        assert isinstance(rng, np.random.Generator)
        assert 0.0 <= rng.random() < 1.0

    def test_entropy_streams_differ(self):
        # 64 doubles from independent OS-entropy generators colliding is
        # beyond astronomically unlikely
        a = make_rng(ENTROPY).random(64)
        b = make_rng(ENTROPY).random(64)
        assert not np.array_equal(a, b)

    def test_entropy_repr_names_itself(self):
        assert "ENTROPY" in repr(ENTROPY)


class TestOverlayDefaultDeterminism:
    @staticmethod
    def _grow(overlay, peers=24):
        for peer in range(peers):
            overlay.join(peer, candidates=range(peer))
        return {p: sorted(n) for p, n in overlay.neighbors.items()}

    def test_default_overlays_are_identical(self):
        first = self._grow(MeshOverlay(max_degree=4))
        second = self._grow(MeshOverlay(max_degree=4))
        assert first == second

    def test_injected_rng_still_controls_choices(self):
        a = self._grow(MeshOverlay(max_degree=4, rng=make_rng(7, "ov")))
        b = self._grow(MeshOverlay(max_degree=4, rng=make_rng(7, "ov")))
        c = self._grow(MeshOverlay(max_degree=4, rng=make_rng(8, "ov")))
        assert a == b
        assert a != c
