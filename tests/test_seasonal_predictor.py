"""Tests for the seasonal predictor extension."""

import numpy as np
import pytest

from repro.core.predictor import LastIntervalPredictor, SeasonalPredictor


class TestSeasonalPredictor:
    def test_falls_back_to_last_until_full_period(self):
        p = SeasonalPredictor(period=4, blend=0.5)
        p.observe(0, 1.0)
        p.observe(0, 2.0)
        assert p.predict(0) == 2.0

    def test_blends_after_full_period(self):
        p = SeasonalPredictor(period=3, blend=0.5)
        for rate in (10.0, 1.0, 1.0):
            p.observe(0, rate)
        # Seasonal slot (3 intervals ago) = 10, last = 1.
        assert p.predict(0) == pytest.approx(0.5 * 10.0 + 0.5 * 1.0)

    def test_blend_one_is_pure_seasonal(self):
        p = SeasonalPredictor(period=2, blend=1.0)
        p.observe(0, 7.0)
        p.observe(0, 3.0)
        assert p.predict(0) == 7.0

    def test_blend_zero_is_last_interval(self):
        p = SeasonalPredictor(period=2, blend=0.0)
        p.observe(0, 7.0)
        p.observe(0, 3.0)
        assert p.predict(0) == 3.0

    def test_initial_rate(self):
        p = SeasonalPredictor(initial_rate=0.25)
        assert p.predict(0) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalPredictor(period=0)
        with pytest.raises(ValueError):
            SeasonalPredictor(blend=1.5)
        p = SeasonalPredictor()
        with pytest.raises(ValueError):
            p.observe(0, -1.0)

    def test_anticipates_diurnal_flash_crowd(self):
        """On a repeating daily pattern, the seasonal predictor should
        anticipate the flash crowd an hour before the last-interval rule
        sees it."""
        pattern = np.concatenate(
            [np.full(8, 1.0), np.full(4, 5.0), np.full(12, 1.0)]
        )  # a 24-"hour" day with a crowd at hours 8-11
        seasonal = SeasonalPredictor(period=24, blend=1.0)
        last = LastIntervalPredictor()
        # Feed two full days.
        for day in range(2):
            for hour, rate in enumerate(pattern):
                # Before observing hour 8 of day 2, compare predictions.
                if day == 1 and hour == 8:
                    assert last.predict(0) == pytest.approx(1.0)  # blind
                    assert seasonal.predict(0) == pytest.approx(5.0)  # sees it
                seasonal.observe(0, float(rate))
                last.observe(0, float(rate))
