"""End-to-end tests for the HTTP service (server + client + CLI).

The service-level acceptance contracts:

* parity — the artifact fetched over ``GET /runs/{id}/result`` is
  byte-identical (sha256) to encoding the same config's ``open_run``
  result directly;
* concurrency — eight runs admitted with a zero-length wait queue all
  execute together, each with a live SSE consumer that sees every
  epoch exactly once and in order;
* SSE replay — a consumer joining mid-run (``Last-Event-ID``) gets the
  missed epochs from the ring, then the live tail;
* HTTP error mapping — 400 / 404 / 409 / 503 (with ``Retry-After``);
* crash recovery — a ``repro serve`` subprocess SIGKILLed mid-run
  leaves a state dir from which a fresh server finishes the run with a
  byte-identical artifact and no leaked ``/dev/shm`` segment.
"""

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import EngineConfig, open_run
from repro.service import RunHost, ServiceClient, ServiceError, ServiceServer
from repro.service.artifact import artifact_bytes, result_payload, sha256_hex
from repro.workload.catalog import catalog_config


def small_catalog(**overrides):
    knobs = dict(
        num_channels=6, chunks_per_channel=4, horizon_hours=0.5,
        arrival_rate=0.5, num_shards=4, dt=60.0, interval_minutes=10.0,
    )
    knobs.update(overrides)
    return catalog_config(**knobs)


def small_config(**overrides) -> EngineConfig:
    workers = overrides.pop("workers", 1)
    return EngineConfig(spec=small_catalog(**overrides), workers=workers)


def reference_sha(config: EngineConfig) -> str:
    with open_run(config) as run:
        return sha256_hex(
            artifact_bytes(result_payload(config.kind, run.result()))
        )


@contextlib.contextmanager
def running_service(**host_kwargs):
    """An in-process server on an ephemeral port, in its own loop thread."""
    started = threading.Event()
    box = {}

    async def main():
        server = ServiceServer(RunHost(**host_kwargs), port=0)
        await server.start()
        box["port"] = server.port
        box["stop"] = asyncio.Event()
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await box["stop"].wait()
        await server.close()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    assert started.wait(30), "server never came up"
    try:
        yield f"http://127.0.0.1:{box['port']}"
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=60)


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
def test_http_artifact_matches_open_run():
    config = small_config(workers=2)
    expected = reference_sha(config)
    with running_service(max_concurrent=2) as url:
        client = ServiceClient(url)
        run_id = client.submit(config)
        info = client.wait(run_id)
        assert info["state"] == "done"
        data = client.result_bytes(run_id)
        assert sha256_hex(data) == expected == info["artifact_sha256"]
        # and the document parses back to the summary schema
        assert "summary" in json.loads(data.decode("utf-8"))


def test_submit_accepts_engine_config_document():
    config = small_config()
    with running_service() as url:
        client = ServiceClient(url)
        run_id = client.submit(config.to_dict())  # plain-dict path
        assert client.wait(run_id)["state"] == "done"


# ----------------------------------------------------------------------
# Concurrency + SSE
# ----------------------------------------------------------------------
def test_eight_concurrent_runs_with_interleaved_sse():
    configs = [small_config(seed=2011 + i) for i in range(8)]
    with running_service(max_concurrent=8, queue_limit=0) as url:
        client = ServiceClient(url)
        # queue_limit=0: all eight admissions must go straight to
        # execution slots — this IS the concurrency assertion.
        run_ids = [client.submit(config) for config in configs]

        def consume(run_id, out):
            stream = ServiceClient(url)
            out[run_id] = [
                event for event in stream.events(run_id)
                if event["event"] == "epoch"
            ]

        seen = {}
        threads = [
            threading.Thread(target=consume, args=(run_id, seen))
            for run_id in run_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        for run_id in run_ids:
            info = client.run(run_id)
            assert info["state"] == "done"
            indices = [event["data"]["index"] for event in seen[run_id]]
            assert indices == list(range(1, info["epochs_total"] + 1))
            assert all(
                event["data"]["run"] == run_id for event in seen[run_id]
            )


def test_sse_mid_run_join_replays_missed_epochs():
    with running_service() as url:
        client = ServiceClient(url)
        run_id = client.submit(small_config())
        client.wait(run_id)
        # Joining after the run finished, claiming we saw epoch 1:
        # the ring must replay 2..N and close with the terminal state.
        events = list(client.events(run_id, last_event_id=1))
        indices = [
            event["data"]["index"]
            for event in events if event["event"] == "epoch"
        ]
        total = client.run(run_id)["epochs_total"]
        assert indices == list(range(2, total + 1))
        assert events[-1]["event"] == "state"
        assert events[-1]["data"]["state"] == "done"


# ----------------------------------------------------------------------
# HTTP error mapping
# ----------------------------------------------------------------------
def test_error_statuses():
    with running_service(max_concurrent=1, queue_limit=0) as url:
        client = ServiceClient(url)
        with pytest.raises(ServiceError) as excinfo:
            client.run("r9999")
        assert excinfo.value.status == 404

        document = small_config().to_dict()
        document["spec"]["bogus_knob"] = 1
        with pytest.raises(ServiceError) as excinfo:
            client.submit(document)
        assert excinfo.value.status == 400
        assert "bogus_knob" in excinfo.value.message

        run_id = client.submit(small_config(seed=1))
        with pytest.raises(ServiceError) as excinfo:
            client.submit(small_config(seed=2))  # pool + queue both full
        assert excinfo.value.status == 503

        with pytest.raises(ServiceError) as excinfo:
            client.result_bytes(run_id)  # not done yet
        assert excinfo.value.status == 409

        with pytest.raises(ServiceError) as excinfo:
            client.checkpoint(run_id)  # host has no state dir
        assert excinfo.value.status == 409
        client.wait(run_id)


def test_dashboard_and_health():
    with running_service() as url:
        client = ServiceClient(url)
        assert client.healthy()
        page = client._request("GET", "/").decode("utf-8")
        assert "<html" in page and "EventSource" in page


# ----------------------------------------------------------------------
# Crash recovery: serve subprocess, SIGKILL, restart, byte parity
# ----------------------------------------------------------------------
def _spawn_serve(state_dir) -> "tuple[subprocess.Popen, str]":
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--state-dir", str(state_dir), "--checkpoint-every", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    line = process.stdout.readline()
    assert "repro-service listening on" in line, line
    url = line.split("listening on ", 1)[1].split()[0]
    return process, url


def test_sigkill_restart_resume_byte_identical(tmp_path):
    # 2 h at 10-minute epochs: 12 epochs, so the kill lands mid-run.
    config = small_config(horizon_hours=2.0, workers=2)
    expected = reference_sha(config)

    process, url = _spawn_serve(tmp_path)
    try:
        client = ServiceClient(url)
        client.wait_healthy()
        run_id = client.submit(config)
        for event in client.events(run_id):
            # Two auto-checkpointed epochs recorded, then pull the plug.
            if event["event"] == "epoch" and event["data"]["index"] >= 2:
                break
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup backstop
            process.kill()
            process.wait(timeout=30)

    meta = json.loads((tmp_path / "runs" / run_id / "meta.json").read_text())
    assert meta["state"] == "running"  # the crash left it mid-flight

    process, url = _spawn_serve(tmp_path)
    try:
        client = ServiceClient(url)
        client.wait_healthy()
        info = client.wait(run_id)  # adoption requeued + resumed it
        assert info["state"] == "done"
        assert info["epochs_total"] == 12
        data = client.result_bytes(run_id)
        assert sha256_hex(data) == expected
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait(timeout=30)

    # The janitor + graceful close left nothing in /dev/shm (give the
    # kernel a beat; the session-level conftest guard re-checks too).
    time.sleep(0.2)
    leaked = [name for name in os.listdir("/dev/shm") if name.startswith("psm_")]
    assert not leaked, f"leaked shared-memory segments: {leaked}"
