"""Golden-parity tests for the vectorized step kernel.

The fixtures under ``tests/golden/`` were recorded from the original
scalar kernel (one Python iteration and one scalar RNG draw per event)
with ``scripts/record_golden.py``. The vectorized kernel's contract —
see docs/performance.md — is that on fixed seeds it reproduces those
trajectories *byte for byte*: the same per-channel RNG stream
consumption order, the same float-reduction order over users, hence
identical quality series, bandwidth series and arrival/departure counts,
in both delivery modes, for the raw kernel and the full closed loop.

``mean_sojourn`` is the one deliberate exception: it is a reporting-only
aggregate (nothing feeds it back into the control loop), so its
accumulator uses a vectorized partial sum and is compared to a relative
tolerance instead of bit-exactly.
"""

import importlib.util
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.sim.rng import RandomStreams

REPO = Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden"

_spec = importlib.util.spec_from_file_location(
    "record_golden", REPO / "scripts" / "record_golden.py"
)
record_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(record_golden)

EXACT_EXEMPT = {"mean_sojourn"}


def _assert_matches_golden(got: dict, fixture: str) -> None:
    want = json.loads((GOLDEN / fixture).read_text())
    for key, expected in want.items():
        if key in EXACT_EXEMPT:
            assert math.isclose(got[key], expected, rel_tol=1e-9), key
        else:
            assert got[key] == expected, (
                f"{fixture}: {key!r} diverged from the recorded scalar-"
                f"kernel trajectory (byte-identical parity contract)"
            )


class TestKernelParity:
    def test_client_server_kernel(self):
        _assert_matches_golden(
            record_golden.kernel_trajectory("client-server"),
            "kernel_client_server.json",
        )

    def test_p2p_kernel(self):
        _assert_matches_golden(
            record_golden.kernel_trajectory("p2p"),
            "kernel_p2p.json",
        )


class TestClosedLoopParity:
    def test_client_server(self):
        _assert_matches_golden(
            record_golden.closed_loop_trajectory("client-server"),
            "closed_loop_client_server.json",
        )

    def test_p2p(self):
        _assert_matches_golden(
            record_golden.closed_loop_trajectory("p2p"),
            "closed_loop_p2p.json",
        )


class TestBatchRNGStreamCompatibility:
    """The invariant the batched transition sampling rests on."""

    def test_batch_equals_scalar_draws(self):
        a = RandomStreams(seed=123)
        b = RandomStreams(seed=123)
        scalar = [b.get("behaviour", "3").random() for _ in range(40)]
        np.testing.assert_array_equal(a.batch(40, "behaviour", "3"), scalar)

    def test_interleaving_batch_and_scalar(self):
        a = RandomStreams(seed=9)
        b = RandomStreams(seed=9)
        mixed = list(a.batch(3, "x")) + [a.get("x").random()] + list(a.batch(2, "x"))
        pure = [b.get("x").random() for _ in range(6)]
        np.testing.assert_array_equal(mixed, pure)

    def test_streams_independent_per_channel(self):
        streams = RandomStreams(seed=5)
        assert not np.array_equal(
            streams.batch(8, "behaviour", "0"),
            streams.batch(8, "behaviour", "1"),
        )

    def test_batch_rejects_negative(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=1).batch(-1, "x")
