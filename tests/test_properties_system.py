"""Property-based tests: system-level invariants of the simulator,
billing and optimizers under randomized inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.billing import BillingMeter
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.core.packing import pack_allocations
from repro.vod.channel import make_uniform_channels
from repro.vod.simulator import VoDSimulator, VoDSystemConfig
from repro.workload.trace import Session, Trace

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    sessions = sorted(
        (
            Session(
                arrival_time=float(rng.uniform(0, 1800)),
                channel=int(rng.integers(0, 2)),
                start_chunk=int(rng.integers(0, 4)),
                upload_capacity=float(rng.uniform(0, 2 * r)),
            )
            for _ in range(n)
        ),
        key=lambda s: s.arrival_time,
    )
    return Trace(config_summary={}, sessions=sessions)


class TestSimulatorInvariants:
    @given(
        trace=random_trace(),
        capacity_scale=st.floats(min_value=0.0, max_value=3.0),
        mode=st.sampled_from(["client-server", "p2p"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_bounds(self, trace, capacity_scale, mode):
        channels = make_uniform_channels(2, 4, r, T0)
        sim = VoDSimulator(
            channels,
            trace,
            VoDSystemConfig(mode=mode, dt=30.0, user_rate_cap=R, seed=5),
        )
        for ch in channels:
            sim.set_cloud_capacity(
                ch.channel_id, np.full(4, capacity_scale * R)
            )
        sim.advance_to(3600.0)
        # User conservation.
        assert sim.population() == sim.arrivals - sim.departures
        assert sim.arrivals == len(trace)
        # Quality in [0, 1] at every sample.
        for sample in sim.quality.samples:
            assert 0.0 <= sample.quality <= 1.0
        # Bandwidth samples nonnegative and cloud bounded by provisioned.
        for s in sim.bandwidth:
            assert s.cloud_used >= 0.0
            assert s.peer_used >= 0.0
            assert s.cloud_used <= s.provisioned + 1e-6
        # Retrieval accounting: every retrieval belongs to a known channel.
        assert sim.quality.total_retrievals >= sim.quality.unsmooth_retrievals


class TestBillingInvariants:
    @given(
        levels=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=3600.0),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_piecewise_integral(self, levels):
        """The meter's report must equal the hand-computed piecewise
        integral of the recorded levels."""
        spec = VirtualClusterSpec("only", 1.0, 2.0, 100, R)
        nfs = NFSClusterSpec("only", 1.0, 1e-4, 1e12)
        meter = BillingMeter({"only": spec}, {"only": nfs})
        times = sorted(t for t, _ in levels)
        counts = [c for _, c in levels]
        records = sorted(zip(times, counts))
        clean = []
        last_t = -1.0
        for t, c in records:
            if t > last_t:
                clean.append((t, c))
                last_t = t
        for t, c in clean:
            meter.record_vm_usage(t, {"only": c})
        horizon = clean[-1][0] + 3600.0
        report = meter.report(horizon)
        expected = 0.0
        for (t0, c0), (t1, _) in zip(clean, clean[1:]):
            expected += c0 * (t1 - t0) / 3600.0
        expected += clean[-1][1] * (horizon - clean[-1][0]) / 3600.0
        assert report.vm_hours["only"] == pytest.approx(expected, abs=1e-9)
        assert report.vm_cost == pytest.approx(2.0 * expected, abs=1e-9)


class TestPackingInvariants:
    @given(
        shares=st.lists(
            st.floats(min_value=0.0, max_value=3.0),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mass_conserved_and_loads_bounded(self, shares):
        allocations = {
            ((0, i), "standard"): z for i, z in enumerate(shares)
        }
        result = pack_allocations(allocations)
        # Every VM's load is in (0, 1].
        for vm in result.vms:
            assert 0.0 < vm.load <= 1.0 + 1e-9
        # Total packed mass equals total allocated mass.
        packed = sum(vm.load for vm in result.vms)
        assert packed == pytest.approx(sum(shares), abs=1e-6)
        # VM count is within the next-fit guarantee: <= 2x optimal + #chunks.
        optimal = int(np.ceil(sum(shares) - 1e-9))
        assert result.total_vms <= 2 * optimal + len(shares)
