"""Tests for repro.core.vm_allocation: Eqn (7) solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.cluster import VirtualClusterSpec
from repro.core.vm_allocation import (
    VMProblem,
    greedy_vm_allocation,
    lp_vm_allocation,
)

R = 10e6 / 8.0


def cluster(name, utility, price, max_vms):
    return VirtualClusterSpec(name, utility, price, max_vms, R)


def paper_clusters(scale=1.0):
    return [
        cluster("standard", 0.6, 0.45, int(75 * scale)),
        cluster("medium", 0.8, 0.70, int(30 * scale)),
        cluster("advanced", 1.0, 0.80, int(45 * scale)),
    ]


def problem(demands, clusters=None, budget=100.0):
    return VMProblem(
        demands=demands,
        vm_bandwidth=R,
        clusters=clusters or paper_clusters(),
        budget_per_hour=budget,
    )


class TestGreedy:
    def test_demand_covered_exactly(self):
        demands = {("c", 0): 3.5 * R, ("c", 1): 1.2 * R}
        plan = greedy_vm_allocation(problem(demands))
        assert plan.feasible
        totals = {}
        for (chunk, _), z in plan.allocations.items():
            totals[chunk] = totals.get(chunk, 0.0) + z
        assert totals[("c", 0)] == pytest.approx(3.5)
        assert totals[("c", 1)] == pytest.approx(1.2)

    def test_best_marginal_utility_first(self):
        # advanced: 1.0/0.80 = 1.25 > standard 0.6/0.45 = 1.333... wait:
        # standard 1.333, advanced 1.25, medium 1.143 -> standard first.
        demands = {("c", 0): 2.0 * R}
        plan = greedy_vm_allocation(problem(demands))
        assert plan.allocations[(("c", 0), "standard")] == pytest.approx(2.0)

    def test_spillover_to_second_cluster(self):
        clusters = [
            cluster("best", 1.0, 0.5, 2),  # ratio 2.0, only 2 VMs
            cluster("next", 0.8, 0.5, 10),  # ratio 1.6
        ]
        plan = greedy_vm_allocation(problem({("c", 0): 5.0 * R}, clusters))
        assert plan.allocations[(("c", 0), "best")] == pytest.approx(2.0)
        assert plan.allocations[(("c", 0), "next")] == pytest.approx(3.0)

    def test_budget_exhaustion_partial_plan(self):
        clusters = [cluster("only", 1.0, 1.0, 100)]
        plan = greedy_vm_allocation(
            problem({("c", 0): 10.0 * R}, clusters, budget=4.0)
        )
        assert not plan.feasible
        assert plan.unserved_vms == pytest.approx(6.0)
        assert plan.cost_per_hour <= 4.0 + 1e-9

    def test_capacity_exhaustion_partial_plan(self):
        clusters = [cluster("small", 1.0, 0.1, 3)]
        plan = greedy_vm_allocation(problem({("c", 0): 5.0 * R}, clusters))
        assert not plan.feasible
        assert plan.unserved_vms == pytest.approx(2.0)

    def test_zero_demand_feasible_and_free(self):
        plan = greedy_vm_allocation(problem({("c", 0): 0.0}))
        assert plan.feasible
        assert plan.cost_per_hour == 0.0
        assert plan.cluster_totals() == {}

    def test_integer_vm_counts_ceil(self):
        demands = {("c", 0): 1.4 * R, ("c", 1): 1.4 * R}
        plan = greedy_vm_allocation(problem(demands))
        counts = plan.integer_vm_counts()
        assert counts["standard"] == 3  # ceil(2.8)

    def test_chunk_bandwidth_grants(self):
        demands = {("c", 0): 2.5 * R}
        plan = greedy_vm_allocation(problem(demands))
        grants = plan.chunk_bandwidth(R)
        assert grants[("c", 0)] == pytest.approx(2.5 * R)

    def test_paper_budget_supports_paper_scale(self):
        """BM=$100/h must cover the Table II fleet used at once."""
        # All 150 VMs: 75*0.45 + 30*0.70 + 45*0.80 = 90.75 <= 100.
        demands = {("c", i): R for i in range(150)}
        plan = greedy_vm_allocation(problem(demands, budget=100.0))
        assert plan.feasible
        assert plan.cost_per_hour == pytest.approx(90.75)


class TestAgainstLP:
    def test_lp_matches_greedy_when_unconstrained(self):
        demands = {("c", 0): 2.0 * R, ("c", 1): 3.0 * R}
        greedy = greedy_vm_allocation(problem(demands))
        lp = lp_vm_allocation(problem(demands))
        assert lp.feasible
        # Both fully cover demand; LP objective >= greedy objective.
        assert lp.objective >= greedy.objective - 1e-6

    def test_lp_dominates_greedy_objective(self):
        rng = np.random.default_rng(7)
        for _ in range(8):
            demands = {
                ("c", i): float(rng.uniform(0, 4)) * R for i in range(6)
            }
            prob = problem(demands, paper_clusters(scale=0.1), budget=10.0)
            greedy = greedy_vm_allocation(prob)
            lp = lp_vm_allocation(prob)
            if greedy.feasible and lp.feasible:
                assert lp.objective >= greedy.objective - 1e-6

    def test_lp_detects_infeasibility(self):
        clusters = [cluster("small", 1.0, 0.1, 2)]
        lp = lp_vm_allocation(problem({("c", 0): 5.0 * R}, clusters))
        assert not lp.feasible
        assert lp.unserved_vms > 0

    def test_lp_best_effort_on_infeasible(self):
        clusters = [cluster("small", 1.0, 0.1, 2)]
        lp = lp_vm_allocation(problem({("c", 0): 5.0 * R}, clusters))
        # Still allocates what it can.
        assert sum(lp.allocations.values()) == pytest.approx(2.0, abs=1e-6)

    def test_empty_problem(self):
        lp = lp_vm_allocation(problem({}))
        assert lp.feasible
        assert lp.objective == 0.0


class TestInvariants:
    @given(
        n=st.integers(min_value=1, max_value=8),
        scale=st.floats(min_value=0.0, max_value=5.0),
        budget=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_constraints_always_hold(self, n, scale, budget):
        rng = np.random.default_rng(n)
        demands = {("c", i): float(rng.uniform(0, scale)) * R for i in range(n)}
        clusters = paper_clusters(scale=0.1)
        plan = greedy_vm_allocation(problem(demands, clusters, budget))
        # Cluster capacity.
        totals = plan.cluster_totals()
        caps = {c.name: c.max_vms for c in clusters}
        for name, used in totals.items():
            assert used <= caps[name] + 1e-9
        # Budget.
        assert plan.cost_per_hour <= budget + 1e-9
        # No chunk over-served.
        served = {}
        for (chunk, _), z in plan.allocations.items():
            served[chunk] = served.get(chunk, 0.0) + z
        for chunk, z in served.items():
            assert z <= demands[chunk] / R + 1e-9
        # Nonnegative allocations.
        assert all(z >= 0 for z in plan.allocations.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            VMProblem({}, 0.0, paper_clusters(), 1.0)
        with pytest.raises(ValueError):
            VMProblem({("c", 0): -1.0}, R, paper_clusters(), 1.0)
        with pytest.raises(ValueError):
            VMProblem({}, R, [], 1.0)
