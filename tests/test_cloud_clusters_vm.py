"""Tests for repro.cloud.cluster and repro.cloud.vm."""

import pytest

from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.vm import (
    DEFAULT_BOOT_SECONDS,
    VM,
    VMPool,
    VMState,
)
from repro.sim.engine import Simulator


def make_vm_spec(name="standard", max_vms=5, price=0.45, utility=0.6):
    return VirtualClusterSpec(
        name=name,
        utility=utility,
        price_per_hour=price,
        max_vms=max_vms,
        vm_bandwidth=10e6 / 8.0,
    )


def make_nfs_spec(name="standard", utility=0.8, price=1.11e-4, gb=20.0):
    return NFSClusterSpec(
        name=name,
        utility=utility,
        price_per_gb_hour=price,
        capacity_bytes=gb * 1024**3,
    )


class TestSpecs:
    def test_marginal_utility(self):
        spec = make_vm_spec(price=0.5, utility=1.0)
        assert spec.marginal_utility_per_dollar == pytest.approx(2.0)

    def test_paper_table2_ordering(self):
        """With Table II prices, 'standard' has the best utility/dollar."""
        standard = make_vm_spec("standard", price=0.45, utility=0.6)
        medium = make_vm_spec("medium", price=0.70, utility=0.8)
        advanced = make_vm_spec("advanced", price=0.80, utility=1.0)
        ratios = [
            s.marginal_utility_per_dollar for s in (standard, advanced, medium)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_nfs_price_per_byte(self):
        spec = make_nfs_spec(price=1.11e-4)
        assert spec.price_per_byte_hour == pytest.approx(1.11e-4 / 1024**3)

    def test_chunk_slots(self):
        spec = make_nfs_spec(gb=20.0)
        # 15 MB chunks in 20 GiB.
        assert spec.chunk_slots(15e6) == int(20 * 1024**3 // 15e6)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            make_vm_spec(price=0.0)
        with pytest.raises(ValueError):
            VirtualClusterSpec("x", 1.0, 1.0, -1, 100.0)
        with pytest.raises(ValueError):
            make_nfs_spec(utility=0.0)
        with pytest.raises(ValueError):
            make_nfs_spec(gb=20.0).chunk_slots(0)


class TestInstantPool:
    def test_launch_instant(self):
        pool = VMPool(make_vm_spec(max_vms=3))
        assert pool.launch(2) == 2
        assert pool.running == 2
        assert pool.available_to_launch == 1

    def test_launch_capped_by_capacity(self):
        pool = VMPool(make_vm_spec(max_vms=3))
        assert pool.launch(10) == 3
        assert pool.running == 3

    def test_shutdown(self):
        pool = VMPool(make_vm_spec(max_vms=3))
        pool.launch(3)
        assert pool.shutdown(2) == 2
        assert pool.running == 1
        assert pool.available_to_launch == 2

    def test_scale_to(self):
        pool = VMPool(make_vm_spec(max_vms=10))
        assert pool.scale_to(4) == 4
        assert pool.scale_to(4) == 0
        assert pool.scale_to(1) == -3
        assert pool.active == 1

    def test_scale_to_clamps_to_capacity(self):
        pool = VMPool(make_vm_spec(max_vms=3))
        pool.scale_to(100)
        assert pool.active == 3

    def test_running_bandwidth(self):
        spec = make_vm_spec(max_vms=4)
        pool = VMPool(spec)
        pool.launch(3)
        assert pool.running_bandwidth() == pytest.approx(3 * spec.vm_bandwidth)

    def test_negative_counts_rejected(self):
        pool = VMPool(make_vm_spec())
        with pytest.raises(ValueError):
            pool.launch(-1)
        with pytest.raises(ValueError):
            pool.shutdown(-1)
        with pytest.raises(ValueError):
            pool.scale_to(-1)

    def test_launch_shutdown_counters(self):
        pool = VMPool(make_vm_spec(max_vms=5))
        pool.launch(3)
        pool.shutdown(1)
        assert pool.launches == 3
        assert pool.shutdowns == 1


class TestTimedPool:
    def test_boot_takes_25_seconds(self):
        """Paper Section VI-C: 'around 25 seconds to turn on a VM'."""
        sim = Simulator()
        pool = VMPool(make_vm_spec(max_vms=2), sim)
        pool.launch(1)
        assert pool.booting == 1
        assert pool.running == 0
        sim.run(until=DEFAULT_BOOT_SECONDS - 1)
        assert pool.running == 0
        sim.run(until=DEFAULT_BOOT_SECONDS + 1)
        assert pool.running == 1
        assert pool.booting == 0

    def test_parallel_boots(self):
        """VMs launch in parallel, so N boots still take ~25 s total."""
        sim = Simulator()
        pool = VMPool(make_vm_spec(max_vms=50), sim)
        pool.launch(50)
        sim.run(until=26.0)
        assert pool.running == 50

    def test_shutdown_faster_than_boot(self):
        sim = Simulator()
        pool = VMPool(make_vm_spec(max_vms=1), sim, boot_seconds=25, shutdown_seconds=10)
        pool.launch(1)
        sim.run(until=30.0)
        pool.shutdown(1)
        sim.run(until=35.0)  # before the 10 s shutdown (30 + 10)
        assert pool.count(VMState.SHUTTING_DOWN) == 1
        sim.run(until=41.0)
        assert pool.available_to_launch == 1

    def test_shutdown_prefers_booting_vms(self):
        sim = Simulator()
        pool = VMPool(make_vm_spec(max_vms=3), sim)
        pool.launch(2)
        sim.run(until=30.0)  # both running
        pool.launch(1)  # one booting
        pool.shutdown(1)
        # The booting VM should have been reclaimed, not a running one.
        assert pool.running == 2

    def test_assignment_cleared_on_shutdown(self):
        pool = VMPool(make_vm_spec(max_vms=1))
        pool.launch(1)
        vm = pool.running_vms()[0]
        vm.assignment[("ch", 0)] = 0.5
        pool.shutdown(1)
        assert vm.assignment == {}


class TestVM:
    def test_assigned_fraction(self):
        vm = VM(vm_id=1, cluster="standard")
        vm.assignment[("a", 1)] = 0.25
        vm.assignment[("a", 2)] = 0.5
        assert vm.assigned_fraction() == pytest.approx(0.75)

    def test_usable_only_when_running(self):
        vm = VM(vm_id=1, cluster="standard")
        assert not vm.is_usable
        vm.state = VMState.RUNNING
        assert vm.is_usable
