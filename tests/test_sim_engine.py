"""Tests for repro.sim: engine, events, rng."""

import numpy as np
import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue
from repro.sim.rng import RandomStreams, make_rng


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda: fired.append("c"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(2.0, lambda: fired.append("b"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("low"), priority=1)
        q.push(1.0, lambda: fired.append("hi"), priority=0)
        q.push(1.0, lambda: fired.append("low2"), priority=1)
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["hi", "low", "low2"]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda: fired.append("x"))
        q.cancel(event)
        assert q.pop() is None
        assert fired == []
        assert len(q) == 0

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(e1)
        assert q.peek_time() == 2.0

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), lambda: None)

    def test_snapshot(self):
        q = EventQueue()
        q.push(2.0, lambda: None, label="b")
        q.push(1.0, lambda: None, label="a")
        assert q.snapshot() == ((1.0, "a"), (2.0, "b"))


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0
        assert sim.events_processed == 2

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_excludes_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.schedule(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]
        assert sim.now == 10.0
        sim.run(until=20.0)
        assert fired == [5, 15]

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule_in(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_stop_halts(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(5):
            sim.schedule(float(t), lambda t=t: fired.append(t))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestRng:
    def test_deterministic(self):
        a = make_rng(42, "x").random(5)
        b = make_rng(42, "x").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        a = make_rng(42, "x").random(5)
        b = make_rng(42, "y").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1, "x").random(5)
        b = make_rng(2, "x").random(5)
        assert not np.allclose(a, b)

    def test_streams_cached(self):
        streams = RandomStreams(7)
        assert streams.get("a") is streams.get("a")
        assert streams.get("a") is not streams.get("b")

    def test_spawn_independent(self):
        parent = RandomStreams(7)
        child1 = parent.spawn("w1")
        child2 = parent.spawn("w2")
        a = child1.get("x").random(4)
        b = child2.get("x").random(4)
        assert not np.allclose(a, b)

    def test_labels(self):
        streams = RandomStreams(0)
        streams.get("alpha")
        streams.get("beta")
        assert set(streams.labels()) == {"alpha", "beta"}
