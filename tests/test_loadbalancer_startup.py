"""Tests for repro.cloud.loadbalancer and repro.queueing.startup."""

import math

import numpy as np
import pytest

from repro.cloud.loadbalancer import LoadBalancer
from repro.cloud.vm import VM, VMState
from repro.queueing.capacity import CapacityModel, solve_channel_capacity
from repro.queueing.startup import StartupDelayModel, channel_startup_delay
from repro.queueing.transitions import uniform_jump_matrix
from repro.vod.queue_sim import JacksonChannelSimulator

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


def running_vm(vm_id, assignment):
    vm = VM(vm_id=vm_id, cluster="standard", state=VMState.RUNNING)
    vm.assignment.update(assignment)
    return vm


class TestLoadBalancerDispatch:
    def test_demand_lands_on_assigned_vm(self):
        vms = [running_vm(1, {("c", 0): 1.0}), running_vm(2, {("c", 1): 1.0})]
        balancer = LoadBalancer(R)
        report = balancer.dispatch(vms, {("c", 0): 0.5 * R})
        assert report.per_vm_load[1] == pytest.approx(0.5 * R)
        assert report.per_vm_load[2] == 0.0
        assert report.dropped == 0.0

    def test_least_loaded_first(self):
        vms = [
            running_vm(1, {("c", 0): 1.0}),
            running_vm(2, {("c", 0): 1.0}),
        ]
        balancer = LoadBalancer(R)
        report = balancer.dispatch(
            vms, {("c", 0): 1.0 * R}
        )
        # Split across both VMs rather than saturating one.
        assert report.per_vm_load[1] == pytest.approx(R)
        # First fills least-loaded (vm 1), then the next.
        assert report.total_load == pytest.approx(R)

    def test_headroom_respected(self):
        vms = [running_vm(1, {("c", 0): 0.4, ("c", 1): 0.6})]
        balancer = LoadBalancer(R)
        report = balancer.dispatch(vms, {("c", 0): R})
        # Only 40% of the VM is assigned to chunk 0.
        assert report.per_vm_load[1] == pytest.approx(0.4 * R)
        assert report.dropped == pytest.approx(0.6 * R)

    def test_unserved_chunk_dropped(self):
        vms = [running_vm(1, {("c", 0): 1.0})]
        report = LoadBalancer(R).dispatch(vms, {("x", 9): R})
        assert report.dropped == pytest.approx(R)

    def test_non_running_vms_ignored(self):
        vm = running_vm(1, {("c", 0): 1.0})
        vm.state = VMState.BOOTING
        report = LoadBalancer(R).dispatch([vm], {("c", 0): R})
        assert report.dropped == pytest.approx(R)

    def test_imbalance_metric(self):
        vms = [running_vm(1, {("c", 0): 1.0}), running_vm(2, {("c", 1): 1.0})]
        report = LoadBalancer(R).dispatch(
            vms, {("c", 0): R, ("c", 1): R}
        )
        assert report.imbalance == pytest.approx(0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer(R).dispatch([], {("c", 0): -1.0})


class TestLoadBalancerRebalance:
    def test_overloaded_vm_offloads(self):
        hot = running_vm(1, {("c", 0): 0.9, ("c", 1): 0.6})  # 1.5 total
        cold = running_vm(2, {})
        moves = LoadBalancer(R).rebalance([hot, cold])
        assert moves >= 1
        assert hot.assigned_fraction() <= 1.0 + 1e-9
        assert cold.assigned_fraction() > 0.0
        # Total assignment mass conserved.
        total = hot.assigned_fraction() + cold.assigned_fraction()
        assert total == pytest.approx(1.5)

    def test_no_target_leaves_overload(self):
        hot = running_vm(1, {("c", 0): 0.9, ("c", 1): 0.6})
        full = running_vm(2, {("d", 0): 1.0})
        moves = LoadBalancer(R).rebalance([hot, full])
        assert moves == 0
        assert hot.assigned_fraction() == pytest.approx(1.5)

    def test_balanced_fleet_untouched(self):
        vms = [running_vm(i, {("c", i): 0.8}) for i in range(3)]
        assert LoadBalancer(R).rebalance(vms) == 0


class TestStartupDelayModel:
    def test_no_wait_is_pure_service(self):
        model = StartupDelayModel(
            servers=4, arrival_rate=0.0, service_rate=1 / 12.0,
            wait_probability=0.0,
        )
        assert model.mean == pytest.approx(12.0)
        assert model.survival(0.0) == pytest.approx(1.0)
        assert model.survival(12.0) == pytest.approx(math.exp(-1.0))

    def test_mean_with_waiting(self):
        mu, lam, m = 1 / 12.0, 0.3, 5
        from repro.queueing.erlang import erlang_c

        c = erlang_c(m, lam / mu)
        model = StartupDelayModel(m, lam, mu, c)
        expected = c / (m * mu - lam) + 12.0
        assert model.mean == pytest.approx(expected)

    def test_survival_monotone(self):
        model = StartupDelayModel(3, 0.2, 1 / 12.0, 0.4)
        ts = np.linspace(0, 200, 50)
        values = [model.survival(t) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_quantile_inverts_survival(self):
        model = StartupDelayModel(3, 0.2, 1 / 12.0, 0.4)
        for p in (0.5, 0.9, 0.99):
            t = model.quantile(p)
            assert model.survival(t) == pytest.approx(1 - p, abs=1e-4)

    def test_quantile_validation(self):
        model = StartupDelayModel(3, 0.2, 1 / 12.0, 0.4)
        with pytest.raises(ValueError):
            model.quantile(0.0)

    def test_matches_simulation(self):
        """Mean start-up delay must match the event-driven queue."""
        capacity_model = CapacityModel(
            streaming_rate=r, chunk_duration=T0, vm_bandwidth=R
        )
        p = uniform_jump_matrix(3, 0.5, 0.2)
        lam = 0.2
        capacity = solve_channel_capacity(capacity_model, p, lam, alpha=1.0)
        startup = channel_startup_delay(capacity)
        sim = JacksonChannelSimulator(
            p, lam, capacity_model.service_rate, capacity.servers,
            alpha=1.0, seed=23,
        )
        result = sim.run(horizon=200_000.0, warmup=20_000.0)
        # Queue 0's mean sojourn is the start-up delay of alpha-sessions.
        assert result.mean_sojourn[0] == pytest.approx(startup.mean, rel=0.12)

    def test_capacity_plan_meets_t0_startup(self):
        """Under the solved plan the 95th-percentile start-up delay stays
        within the chunk playback time."""
        capacity_model = CapacityModel(
            streaming_rate=r, chunk_duration=T0, vm_bandwidth=R
        )
        p = uniform_jump_matrix(5, 0.6, 0.2)
        capacity = solve_channel_capacity(capacity_model, p, 0.5, alpha=0.8)
        startup = channel_startup_delay(capacity)
        assert startup.mean <= T0
        assert startup.quantile(0.95) <= 3 * T0
