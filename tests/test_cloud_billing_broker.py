"""Tests for repro.cloud.billing, scheduler, broker and monitor."""

import pytest

from repro.cloud.billing import BillingMeter
from repro.cloud.broker import (
    Broker,
    NegotiationError,
    RequestMonitor,
    ResourceRequest,
    SLANegotiator,
)
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.scheduler import CloudFacility, NFSScheduler


def vm_specs():
    return [
        VirtualClusterSpec("standard", 0.6, 0.45, 10, 1.25e6),
        VirtualClusterSpec("advanced", 1.0, 0.80, 5, 1.25e6),
    ]


def nfs_specs():
    return [
        NFSClusterSpec("standard", 0.8, 1.11e-4, 1.0 * 1024**3),
        NFSClusterSpec("high", 1.0, 2.08e-4, 1.0 * 1024**3),
    ]


def make_facility(**kwargs):
    return CloudFacility(vm_specs(), nfs_specs(), **kwargs)


class TestBillingMeter:
    def test_vm_hours_accrue(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        meter.record_vm_usage(0.0, {"standard": 4})
        meter.record_vm_usage(1800.0, {"standard": 2})  # half an hour later
        report = meter.report(3600.0)
        # 4 VMs for 0.5 h + 2 VMs for 0.5 h = 3 VM-hours.
        assert report.vm_hours["standard"] == pytest.approx(3.0)
        assert report.vm_cost == pytest.approx(3.0 * 0.45)

    def test_storage_cost(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        gib = 1024**3
        meter.record_storage_usage(0.0, {"high": 0.5 * gib})
        report = meter.report(7200.0)  # 2 hours
        assert report.storage_cost == pytest.approx(0.5 * 2.08e-4 * 2.0)

    def test_hourly_rates(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        meter.record_vm_usage(0.0, {"standard": 2, "advanced": 1})
        assert meter.current_vm_cost_rate() == pytest.approx(2 * 0.45 + 0.80)
        report = meter.report(3600.0)
        assert report.hourly_vm_cost == pytest.approx(2 * 0.45 + 0.80)

    def test_time_cannot_go_backwards(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        meter.record_vm_usage(100.0, {"standard": 1})
        with pytest.raises(ValueError):
            meter.record_vm_usage(50.0, {"standard": 2})

    def test_unknown_cluster_rejected(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        with pytest.raises(KeyError):
            meter.record_vm_usage(0.0, {"nope": 1})

    def test_negative_level_rejected(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        with pytest.raises(ValueError):
            meter.record_vm_usage(0.0, {"standard": -1})

    def test_rate_history_recorded(self):
        meter = BillingMeter(
            {s.name: s for s in vm_specs()}, {s.name: s for s in nfs_specs()}
        )
        meter.record_vm_usage(0.0, {"standard": 1})
        meter.record_vm_usage(3600.0, {"standard": 3})
        history = meter.vm_cost_rate_history()
        assert len(history) == 2
        assert history[1][1] == pytest.approx(3 * 0.45)


class TestNFSScheduler:
    def test_placement_applied(self):
        sched = NFSScheduler({s.name: s for s in nfs_specs()})
        sched.apply({("c", 0): ("standard", 15e6), ("c", 1): ("high", 15e6)})
        assert sched.location_of(("c", 0)) == "standard"
        assert sched.stored_bytes()["high"] == pytest.approx(15e6)

    def test_capacity_enforced_transactionally(self):
        sched = NFSScheduler({s.name: s for s in nfs_specs()})
        sched.apply({("c", 0): ("standard", 15e6)})
        too_big = {("c", i): ("standard", 0.6 * 1024**3) for i in range(2)}
        with pytest.raises(ValueError, match="capacity"):
            sched.apply(too_big)
        # Original placement intact.
        assert sched.location_of(("c", 0)) == "standard"

    def test_unknown_cluster_rejected(self):
        sched = NFSScheduler({s.name: s for s in nfs_specs()})
        with pytest.raises(KeyError):
            sched.apply({("c", 0): ("nowhere", 1.0)})

    def test_placement_utility(self):
        sched = NFSScheduler({s.name: s for s in nfs_specs()})
        sched.apply({("c", 0): ("high", 15e6), ("c", 1): ("standard", 15e6)})
        utility = sched.placement_utility({("c", 0): 10.0, ("c", 1): 5.0})
        assert utility == pytest.approx(1.0 * 10.0 + 0.8 * 5.0)


class TestNegotiator:
    def test_quote_clamps_to_capacity(self):
        facility = make_facility()
        negotiator = SLANegotiator(facility)
        grants, vm_cost, _ = negotiator.quote(
            ResourceRequest(vm_targets={"standard": 100})
        )
        assert grants["standard"] == 10
        assert vm_cost == pytest.approx(10 * 0.45)

    def test_unknown_cluster_raises(self):
        negotiator = SLANegotiator(make_facility())
        with pytest.raises(NegotiationError):
            negotiator.quote(ResourceRequest(vm_targets={"huge": 1}))

    def test_budget_enforced(self):
        negotiator = SLANegotiator(make_facility())
        request = ResourceRequest(
            vm_targets={"standard": 10}, max_hourly_budget=1.0
        )
        with pytest.raises(NegotiationError, match="budget"):
            negotiator.negotiate(1, request)

    def test_storage_capacity_checked(self):
        negotiator = SLANegotiator(make_facility())
        request = ResourceRequest(
            vm_targets={},
            storage_placement={("c", 0): ("standard", 2.0 * 1024**3)},
        )
        with pytest.raises(NegotiationError, match="capacity"):
            negotiator.negotiate(1, request)


class TestBroker:
    def test_accepted_request_applied(self):
        facility = make_facility()
        broker = Broker(facility)
        agreement = broker.request(
            ResourceRequest(
                vm_targets={"standard": 3, "advanced": 1},
                storage_placement={("c", 0): ("high", 15e6)},
            )
        )
        assert agreement.vm_grants == {"standard": 3, "advanced": 1}
        assert facility.pools["standard"].running == 3
        assert facility.nfs_scheduler.location_of(("c", 0)) == "high"
        assert broker.last_agreement is agreement

    def test_scale_down_via_request(self):
        facility = make_facility()
        broker = Broker(facility)
        broker.request(ResourceRequest(vm_targets={"standard": 5}))
        broker.request(ResourceRequest(vm_targets={"standard": 2}))
        assert facility.pools["standard"].running == 2

    def test_rejected_request_logged_and_not_applied(self):
        facility = make_facility()
        broker = Broker(facility)
        with pytest.raises(NegotiationError):
            broker.request(
                ResourceRequest(
                    vm_targets={"standard": 5}, max_hourly_budget=0.01
                )
            )
        assert facility.pools["standard"].running == 0
        assert broker.monitor.log[-1][1] is False

    def test_request_ids_increment(self):
        broker = Broker(make_facility())
        a = broker.request(ResourceRequest(vm_targets={"standard": 1}))
        b = broker.request(ResourceRequest(vm_targets={"standard": 1}))
        assert b.request_id == a.request_id + 1


class TestRequestMonitorLog:
    def test_accept_log(self):
        facility = make_facility()
        monitor = RequestMonitor(SLANegotiator(facility))
        agreement = monitor.submit(ResourceRequest(vm_targets={"standard": 2}))
        assert agreement.hourly_vm_cost == pytest.approx(0.9)
        assert monitor.log[0][1] is True


class TestFacility:
    def test_billing_tracks_applied_targets(self):
        facility = make_facility()
        facility.apply_vm_targets({"standard": 4})
        assert facility.billing.current_vm_cost_rate() == pytest.approx(4 * 0.45)

    def test_monitor_samples(self):
        facility = make_facility()
        facility.apply_vm_targets({"standard": 2})
        snap = facility.monitor.sample(0.0, used_bandwidth=1e6)
        assert snap.total_running == 2
        assert snap.running_bandwidth == pytest.approx(2 * 1.25e6)
        assert 0.0 < snap.utilization < 1.0

    def test_clock_drives_billing(self):
        t = {"now": 0.0}
        facility = make_facility(clock=lambda: t["now"])
        facility.apply_vm_targets({"standard": 2})
        t["now"] = 3600.0
        report = facility.billing.report(t["now"])
        assert report.vm_cost == pytest.approx(2 * 0.45)

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError):
            CloudFacility(
                [
                    VirtualClusterSpec("x", 1.0, 1.0, 1, 1.0),
                    VirtualClusterSpec("x", 1.0, 1.0, 1, 1.0),
                ],
                nfs_specs(),
            )
