"""Tests for repro.core.demand: tracker stats -> cloud demand."""

import numpy as np
import pytest

from repro.core.demand import DemandEstimator, aggregate_demand
from repro.queueing.capacity import CapacityModel
from repro.queueing.transitions import sequential_matrix
from repro.vod.tracker import TrackingServer

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


@pytest.fixture
def model():
    return CapacityModel(streaming_rate=r, chunk_duration=T0, vm_bandwidth=R)


@pytest.fixture
def tracker():
    return TrackingServer(2, [4, 4], interval_seconds=3600.0)


def populate(tracker, channel=0, arrivals=360, upload=2 * r):
    for _ in range(arrivals):
        tracker.record_arrival(channel, 0, upload)
    for _ in range(100):
        tracker.record_transition(channel, 0, 1)
        tracker.record_transition(channel, 1, 2)
        tracker.record_departure(channel, 3)


class TestClientServer:
    def test_demand_from_observed_stats(self, model, tracker):
        populate(tracker)
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "client-server")
        demand = estimator.estimate_channel(stats[0])
        assert demand.arrival_rate == pytest.approx(0.1)
        assert demand.total_cloud_demand > 0
        assert demand.cloud_demand.shape == (4,)
        assert np.all(demand.peer_bandwidth == 0)
        # Cloud demand is R times the server counts.
        assert demand.cloud_demand == pytest.approx(R * demand.servers)

    def test_idle_channel_zero_demand(self, model, tracker):
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "client-server")
        demand = estimator.estimate_channel(stats[1])
        assert demand.total_cloud_demand == 0.0
        assert demand.total_servers == 0

    def test_rate_override(self, model, tracker):
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "client-server")
        demand = estimator.estimate_channel(stats[0], arrival_rate=0.5)
        assert demand.arrival_rate == 0.5
        assert demand.total_cloud_demand > 0

    def test_min_arrival_rate_floor(self, model, tracker):
        stats = tracker.close_interval()
        estimator = DemandEstimator(
            model, "client-server", min_arrival_rate=0.01
        )
        demand = estimator.estimate_channel(stats[0])
        assert demand.arrival_rate == 0.01
        assert demand.total_servers > 0

    def test_prior_matrix_used_without_observations(self, model, tracker):
        prior = sequential_matrix(4, continue_prob=0.9)
        estimator = DemandEstimator(
            model, "client-server", prior_matrices={0: prior}
        )
        stats = tracker.close_interval()
        demand = estimator.estimate_channel(stats[0], arrival_rate=0.2)
        # With a sequential prior and alpha=1 (no observed starts), the
        # demand decays along the chain.
        assert demand.servers[0] >= demand.servers[-1]


class TestP2P:
    def test_peer_bandwidth_reduces_cloud(self, model, tracker):
        populate(tracker, upload=2 * r)
        stats = tracker.close_interval()
        cs = DemandEstimator(model, "client-server").estimate_channel(stats[0])
        p2p = DemandEstimator(model, "p2p").estimate_channel(stats[0])
        assert p2p.total_cloud_demand < cs.total_cloud_demand
        assert p2p.peer_bandwidth.sum() > 0

    def test_peer_upload_override(self, model, tracker):
        populate(tracker, upload=0.0)
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "p2p")
        none = estimator.estimate_channel(stats[0])
        lots = estimator.estimate_channel(stats[0], peer_upload=5 * r)
        assert lots.total_cloud_demand <= none.total_cloud_demand

    def test_invalid_mode_rejected(self, model):
        with pytest.raises(ValueError):
            DemandEstimator(model, "hybrid")


class TestAggregate:
    def test_estimate_all_and_aggregate(self, model, tracker):
        populate(tracker, channel=0)
        populate(tracker, channel=1, arrivals=36)
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "client-server")
        demands = estimator.estimate_all(stats)
        merged = aggregate_demand(demands)
        assert set(merged) == {(c, i) for c in range(2) for i in range(4)}
        assert merged[(0, 0)] == pytest.approx(demands[0].cloud_demand[0])

    def test_estimate_all_rate_overrides(self, model, tracker):
        stats = tracker.close_interval()
        estimator = DemandEstimator(model, "client-server")
        demands = estimator.estimate_all(
            stats, arrival_rates={0: 0.3, 1: 0.0}
        )
        assert demands[0].arrival_rate == 0.3
        assert demands[1].arrival_rate == 0.0

    def test_chunk_demands_keys(self, model, tracker):
        populate(tracker)
        stats = tracker.close_interval()
        demand = DemandEstimator(model, "client-server").estimate_channel(stats[0])
        keys = list(demand.chunk_demands())
        assert keys == [(0, 0), (0, 1), (0, 2), (0, 3)]
