"""Tests for repro.workload.tools: trace manipulation."""

import numpy as np
import pytest

from repro.workload.tools import (
    merge_traces,
    scale_trace,
    shift_trace,
    slice_trace,
    thin_trace,
)
from repro.workload.trace import Session, Trace, TraceConfig, generate_trace


@pytest.fixture
def trace():
    return generate_trace(
        TraceConfig(
            num_channels=3,
            chunks_per_channel=4,
            horizon_seconds=4 * 3600.0,
            mean_total_arrival_rate=0.3,
            seed=3,
        )
    )


class TestScale:
    def test_thinning_halves(self, trace):
        scaled = scale_trace(trace, 0.5, seed=1)
        assert len(scaled) == pytest.approx(0.5 * len(trace), rel=0.15)

    def test_doubling(self, trace):
        scaled = scale_trace(trace, 2.0)
        assert len(scaled) == 2 * len(trace)
        times = scaled.arrival_times()
        assert np.all(np.diff(times) >= 0)

    def test_fractional_amplification(self, trace):
        scaled = scale_trace(trace, 1.5, seed=2)
        assert len(scaled) == pytest.approx(1.5 * len(trace), rel=0.15)

    def test_zero_empties(self, trace):
        assert len(scale_trace(trace, 0.0)) == 0

    def test_identity(self, trace):
        assert len(scale_trace(trace, 1.0)) == len(trace)

    def test_negative_rejected(self, trace):
        with pytest.raises(ValueError):
            scale_trace(trace, -1.0)


class TestThin:
    def test_probability_bounds(self, trace):
        with pytest.raises(ValueError):
            thin_trace(trace, 1.5)

    def test_keep_all_and_none(self, trace):
        assert len(thin_trace(trace, 1.0)) == len(trace)
        assert len(thin_trace(trace, 0.0)) == 0

    def test_deterministic(self, trace):
        a = thin_trace(trace, 0.3, seed=9)
        b = thin_trace(trace, 0.3, seed=9)
        assert [s.arrival_time for s in a.sessions] == [
            s.arrival_time for s in b.sessions
        ]


class TestSliceShiftMerge:
    def test_slice_window_and_rezero(self, trace):
        window = slice_trace(trace, 3600.0, 7200.0)
        assert all(0.0 <= s.arrival_time < 3600.0 for s in window.sessions)
        original = [
            s for s in trace.sessions if 3600.0 <= s.arrival_time < 7200.0
        ]
        assert len(window) == len(original)

    def test_slice_validation(self, trace):
        with pytest.raises(ValueError):
            slice_trace(trace, 100.0, 100.0)

    def test_shift(self, trace):
        shifted = shift_trace(trace, 500.0)
        assert shifted.sessions[0].arrival_time == pytest.approx(
            trace.sessions[0].arrival_time + 500.0
        )

    def test_shift_negative_guard(self):
        t = Trace(config_summary={}, sessions=[Session(10.0, 0, 0, 1.0)])
        with pytest.raises(ValueError):
            shift_trace(t, -20.0)

    def test_merge_sorted(self, trace):
        other = shift_trace(trace, 111.0)
        merged = merge_traces([trace, other])
        assert len(merged) == 2 * len(trace)
        assert np.all(np.diff(merged.arrival_times()) >= 0)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_derivation_notes(self, trace):
        derived = slice_trace(scale_trace(trace, 0.5), 0.0, 3600.0)
        assert "scale(0.5)" in derived.config_summary["derived"]
        assert "slice" in derived.config_summary["derived"]


class TestComposition:
    def test_flash_crowd_construction(self, trace):
        """Build a synthetic flash crowd: baseline + a burst slice merged
        on top of hour 2 — a realistic stress-construction workflow."""
        burst = shift_trace(scale_trace(slice_trace(trace, 0, 1800.0), 3.0), 7200.0)
        combined = merge_traces([trace, burst])
        # The burst hour has a higher arrival count than the baseline hour.
        times = combined.arrival_times()
        burst_count = int(((times >= 7200.0) & (times < 9000.0)).sum())
        base_count = int(((times >= 3600.0) & (times < 5400.0)).sum())
        assert burst_count > base_count
