"""DET003 fixture: unordered set iteration/reduction on artifact paths.

``sorted(...)`` imposes an order and is clean; reachability matters —
the same pattern in an unreachable helper is not flagged."""


def result():
    shards = {3, 1, 2}
    total = sum(shards)  # EXPECT[DET003]
    for shard in shards:  # EXPECT[DET003]
        total += shard
    merged = [x * 2 for x in shards | {9}]  # EXPECT[DET003]
    for shard in sorted(shards):  # ordered: clean
        total += shard
    ordered = [x for x in sorted(set(merged))]  # ordered: clean
    return total + len(ordered)


def advance_epoch():
    seen = set()
    seen.add(1)
    return sum(seen.union({2}))  # EXPECT[DET003]


def unreachable_helper():
    # never called from an entry point: hash order cannot taint artifacts
    return sum({1.0, 2.0, 3.0})
