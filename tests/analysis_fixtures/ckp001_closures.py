"""CKP001 fixture: lambdas / local closures on ``self`` are unpicklable
checkpoint state; module-level callables and plain values are fine."""


def module_level_clock():
    return 0.0


class Engine:
    def __init__(self, now):
        self.clock = lambda: now  # EXPECT[CKP001]
        self.epoch = 0
        self.read_clock = module_level_clock  # picklable: module-level

    def rebind(self, offset):
        def shifted():
            return offset + 1.0

        self.clock = shifted  # EXPECT[CKP001]
        # a *call* to the local closure is fine; storing it is the bug
        self.epoch = shifted()
