"""A representative clean module: the whole rule pack must stay silent.

Looks like real engine code — injected rng, ordered reductions, config
threading, module-level clock class — so rule tightening that would
flag idiomatic repo style shows up here first."""

import numpy as np


class EpochClock:
    """Module-level picklable clock (the CKP001-approved shape)."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class MiniEngine:
    def __init__(self, config, rng):
        self.config = config
        self.rng = rng  # injected, never constructed here
        self.clock = EpochClock()
        self.reports = []

    def advance_epoch(self):
        draws = self.rng.random(4)
        self.reports.append(draws.sum())
        self.clock.now += self.config["dt"]

    def result(self):
        ordered = sorted({round(r, 6) for r in self.reports})
        return {"total": float(np.sum(ordered)), "t": self.clock.now}


def run_cell(params, seed=2011):
    engine = MiniEngine(dict(params), params["rng"])
    for _ in range(int(params["epochs"])):
        engine.advance_epoch()
    return engine.result()
