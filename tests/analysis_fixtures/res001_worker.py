"""RES001 fixture (non-owner module): creating a segment anywhere but
the owner module is a finding, and an attach-only scope that also
unlinks violates the workers-never-unlink contract."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def rogue_create(size):
    return shared_memory.SharedMemory(create=True, size=size)  # EXPECT[RES001]


class Worker:
    def attach(self, name):
        self.shm = SharedMemory(name=name)  # EXPECT[RES001]

    def teardown(self):
        self.shm.close()
        self.shm.unlink()  # the attach-only scope must never unlink


class GoodWorker:
    def attach(self, name):
        self.shm = SharedMemory(name="fixture")

    def teardown(self):
        self.shm.close()
