"""DET001 fixture: this file's path ends in ``sim/rng.py``, the one
sanctioned home for raw generator construction — nothing here may be
flagged."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(np.random.SeedSequence([seed]))
