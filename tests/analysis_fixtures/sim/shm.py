"""RES001 fixture (owner-module path ``sim/shm.py``): creates are legal
here, but every creating scope still needs a paired unlink."""

from multiprocessing.shared_memory import SharedMemory


class LeakySegment:
    def __init__(self, size):
        self.shm = SharedMemory(create=True, size=size)  # EXPECT[RES001]

    def close(self):
        self.shm.close()  # closes the mapping but never unlinks


class OwnedSegment:
    def __init__(self, size):
        self.shm = SharedMemory(create=True, size=size)

    def close(self):
        self.shm.close()
        self.shm.unlink()
