"""DET004 fixture: environment reads outside the sanctioned points."""

import os
from os import environ, getenv


def buried_config():
    jobs = os.environ.get("FIXTURE_JOBS", "1")  # EXPECT[DET004]
    if "FIXTURE_FLAG" in os.environ:  # EXPECT[DET004]
        jobs = os.getenv("FIXTURE_JOBS")  # EXPECT[DET004]
    return jobs


def aliased_read():
    return environ["HOME"], getenv("SHELL")  # EXPECT[DET004] EXPECT[DET004]


def fine(config):
    # configuration threaded through an explicit object
    return config.jobs
