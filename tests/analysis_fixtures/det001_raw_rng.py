"""DET001 fixture: raw RNG construction/draws outside sim/rng.py.

Scanned (never imported) by tests/test_analysis.py; the trailing
expectation markers are the test's expected-findings table.
"""

import random

import numpy as np
from numpy.random import default_rng


def unseeded_generator():
    return np.random.default_rng()  # EXPECT[DET001]


def seeded_but_raw(seed):
    rng = np.random.default_rng(seed)  # EXPECT[DET001]
    return rng.random()


def module_level_distribution(n):
    return np.random.normal(size=n)  # EXPECT[DET001]


def imported_constructor():
    return default_rng(7)  # EXPECT[DET001]


def stdlib_random():
    random.seed(0)  # EXPECT[DET001]
    return random.random()  # EXPECT[DET001]


def fine_with_injected_stream(rng):
    # drawing from a passed-in generator is exactly what DET001 wants
    return rng.integers(0, 10)
