"""DET004 fixture: this file's path matches ``api.py`` and the function
is ``resolve_workers`` — the sanctioned resolution point, not flagged —
while the same read anywhere else in the file still is."""

import os


def resolve_workers(workers=None):
    if workers is not None:
        return max(1, int(workers))
    raw = os.environ.get("FIXTURE_CATALOG_JOBS", "")
    return max(1, int(raw)) if raw.strip() else 1


def other_function():
    return os.environ.get("FIXTURE_OTHER")  # EXPECT[DET004]
