"""DET002 fixture: wall-clock reads reachable from artifact entry
points (``advance_epoch`` / ``result`` / ``run_cell``) are findings;
unreachable timing and pragma-sanctioned sites are not."""

import time
from datetime import datetime
from time import perf_counter


def _stamp():
    # two hops from run_cell: run_cell -> _collect -> _stamp
    return time.time()  # EXPECT[DET002]


def _collect():
    return {"at": _stamp()}


def run_cell(params, seed=0):
    return _collect()


class Engine:
    def advance_epoch(self):
        self._merge()
        self.phase = perf_counter()  # EXPECT[DET002]

    def _merge(self):
        return datetime.now()  # EXPECT[DET002]

    def result(self):
        # sanctioned diagnostics: suppressed by the inline pragma
        started = time.perf_counter()  # lint: allow[DET002] fixture timing
        return started


def progress_printer():
    # NOT reachable from any entry point: no finding
    return time.monotonic()
