"""Tests for repro.p2p.contribution: Eqn (5) and the cloud supplement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.contribution import (
    cloud_supplement,
    peer_contribution,
    solve_p2p_channel_capacity,
)
from repro.queueing.capacity import CapacityModel
from repro.queueing.transitions import uniform_jump_matrix

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


@pytest.fixture
def model():
    return CapacityModel(streaming_rate=r, chunk_duration=T0, vm_bandwidth=R)


class TestPeerContribution:
    def test_rarest_chunk_gets_full_supply(self):
        # One rare chunk, one common; no co-ownership interference.
        servers = np.array([2.0, 2.0])
        in_system = np.array([10.0, 10.0])
        owners = np.array([1.0, 100.0])
        gamma = peer_contribution(
            servers, owners, population=20.0, peer_upload=r, streaming_rate=r,
            in_system=in_system, coownership=lambda a, b: 0.0,
        )
        # Rarest chunk (index 0): supply = 1 * r < demand 10 * r.
        assert gamma[0] == pytest.approx(r)
        # Common chunk: capped by its demand E[n] * r.
        assert gamma[1] == pytest.approx(10 * r)

    def test_demand_cap_viewers(self):
        servers = np.array([1.0])
        in_system = np.array([3.0])
        owners = np.array([50.0])
        gamma = peer_contribution(
            servers, owners, 3.0, peer_upload=r, streaming_rate=r,
            in_system=in_system,
        )
        assert gamma[0] == pytest.approx(3.0 * r)  # E[n] * r cap

    def test_demand_cap_servers_literal(self):
        """The paper's literal m_i * r demand model stays available."""
        servers = np.array([1.0])
        owners = np.array([50.0])
        gamma = peer_contribution(
            servers, owners, 50.0, peer_upload=r, streaming_rate=r,
            demand="servers",
        )
        assert gamma[0] == pytest.approx(1.0 * r)

    def test_supply_cap(self):
        servers = np.array([10.0])
        in_system = np.array([100.0])
        owners = np.array([2.0])
        gamma = peer_contribution(
            servers, owners, 100.0, peer_upload=r, streaming_rate=r,
            in_system=in_system,
        )
        assert gamma[0] == pytest.approx(2.0 * r)  # nu * u cap

    def test_coownership_deduction(self):
        """Bandwidth committed to a rarer chunk reduces a later chunk's pool."""
        servers = np.array([4.0, 4.0])
        in_system = np.array([40.0, 40.0])
        owners = np.array([2.0, 3.0])
        population = 80.0

        def overlap(a, b):
            return 0.02 if a != b else 0.03

        gamma_overlap = peer_contribution(
            servers, owners, population, peer_upload=r, streaming_rate=r,
            in_system=in_system, coownership=overlap,
        )
        gamma_disjoint = peer_contribution(
            servers, owners, population, peer_upload=r, streaming_rate=r,
            in_system=in_system, coownership=lambda a, b: 0.0,
        )
        assert gamma_overlap[1] < gamma_disjoint[1]
        assert gamma_overlap[0] == pytest.approx(gamma_disjoint[0])

    def test_zero_upload_gives_zero(self):
        gamma = peer_contribution(
            np.array([3.0, 2.0]), np.array([5.0, 5.0]), 10.0, 0.0, r,
            in_system=np.array([5.0, 5.0]),
        )
        assert np.all(gamma == 0.0)

    def test_never_negative_nor_above_demand(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = rng.integers(1, 8)
            servers = rng.uniform(0, 10, n)
            in_system = rng.uniform(0, 30, n)
            owners = rng.uniform(0, 50, n)
            gamma = peer_contribution(
                servers, owners, in_system.sum(), peer_upload=2 * r,
                streaming_rate=r, in_system=in_system,
            )
            assert np.all(gamma >= 0.0)
            assert np.all(gamma <= in_system * r + 1e-9)

    def test_total_contribution_bounded_by_total_upload(self):
        """With the independence Psi, total Gamma cannot exceed roughly the
        swarm's aggregate upload capacity."""
        servers = np.full(5, 4.0)
        in_system = np.full(5, 50.0)
        owners = np.full(5, 100.0)
        population = 250.0
        upload = 0.5 * r
        gamma = peer_contribution(
            servers, owners, population, upload, r, in_system=in_system
        )
        assert gamma.sum() <= population * upload * 1.25  # loose conservation

    def test_viewers_demand_requires_in_system(self):
        with pytest.raises(ValueError, match="in_system"):
            peer_contribution(np.ones(2), np.ones(2), 2.0, r, r)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            peer_contribution(
                np.ones(2), np.ones(3), 3.0, r, r, in_system=np.ones(2)
            )

    @given(upload_scale=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_peer_upload(self, upload_scale):
        servers = np.array([3.0, 2.0, 4.0])
        in_system = np.array([20.0, 10.0, 30.0])
        owners = np.array([5.0, 1.0, 8.0])
        base = peer_contribution(
            servers, owners, 60.0, r, r, in_system=in_system
        )
        more = peer_contribution(
            servers, owners, 60.0, r * (1 + upload_scale), r,
            in_system=in_system,
        )
        assert more.sum() >= base.sum() - 1e-9


class TestCloudSupplement:
    def test_coverage_reading(self):
        m = np.array([4.0])
        in_system = np.array([20.0])
        gamma = np.array([10.0 * r])  # peers cover half the 20 streams
        delta = cloud_supplement(m, gamma, R, r, in_system=in_system)
        assert delta[0] == pytest.approx(0.5 * R * 4.0)

    def test_full_peer_coverage_zeroes_cloud(self):
        m = np.array([3.0])
        in_system = np.array([12.0])
        gamma = np.array([12.0 * r])
        delta = cloud_supplement(m, gamma, R, r, in_system=in_system)
        assert delta[0] == pytest.approx(0.0)

    def test_no_peers_equals_client_server(self):
        m = np.array([3.0])
        in_system = np.array([12.0])
        delta = cloud_supplement(m, np.zeros(1), R, r, in_system=in_system)
        assert delta[0] == pytest.approx(3.0 * R)

    def test_empty_queue_zero_demand(self):
        delta = cloud_supplement(
            np.array([1.0]), np.zeros(1), R, r, in_system=np.zeros(1)
        )
        assert delta[0] == pytest.approx(R)  # no coverage info -> full m

    def test_server_equivalent_reading(self):
        m = np.array([4.0])
        gamma = np.array([2.0 * r])
        delta = cloud_supplement(
            m, gamma, R, r, accounting="server-equivalent"
        )
        assert delta[0] == pytest.approx(R * 2.0)

    def test_literal_reading(self):
        m = np.array([4.0])
        gamma = np.array([2.0 * r])
        delta = cloud_supplement(m, gamma, R, r, accounting="literal")
        assert delta[0] == pytest.approx(R * 4.0 - 2.0 * r)

    def test_clamped_at_zero(self):
        delta = cloud_supplement(
            np.array([1.0]), np.array([5.0 * r]), R, r,
            accounting="server-equivalent",
        )
        assert delta[0] == 0.0

    def test_unknown_accounting_rejected(self):
        with pytest.raises(ValueError):
            cloud_supplement(np.array([1.0]), np.array([0.0]), R, r,
                             accounting="x")

    def test_coverage_requires_in_system(self):
        with pytest.raises(ValueError, match="in_system"):
            cloud_supplement(np.array([1.0]), np.array([0.0]), R, r)


class TestEndToEnd:
    def test_p2p_demand_below_client_server(self, model):
        p = uniform_jump_matrix(6, 0.6, 0.2)
        result = solve_p2p_channel_capacity(
            model, p, external_rate=1.0, peer_upload=0.9 * r
        )
        cs_total = result.capacity.total_bandwidth
        assert result.total_cloud_demand < cs_total
        assert result.total_peer_bandwidth > 0.0

    def test_more_peer_upload_less_cloud(self, model):
        p = uniform_jump_matrix(6, 0.6, 0.2)
        low = solve_p2p_channel_capacity(model, p, 1.0, peer_upload=0.3 * r)
        high = solve_p2p_channel_capacity(model, p, 1.0, peer_upload=1.2 * r)
        assert high.total_cloud_demand <= low.total_cloud_demand + 1e-6

    def test_offload_scales_with_upload_ratio(self, model):
        """Peer coverage should track u/r: ~30% at 0.3, near-full at 1.5."""
        p = uniform_jump_matrix(6, 0.6, 0.2)
        low = solve_p2p_channel_capacity(model, p, 1.0, peer_upload=0.3 * r)
        high = solve_p2p_channel_capacity(model, p, 1.0, peer_upload=1.5 * r)
        assert 0.05 <= low.peer_offload_ratio <= 0.6
        assert high.peer_offload_ratio >= 0.6

    def test_zero_upload_equals_client_server(self, model):
        p = uniform_jump_matrix(6, 0.6, 0.2)
        result = solve_p2p_channel_capacity(model, p, 1.0, peer_upload=0.0)
        assert result.cloud_demand == pytest.approx(
            result.capacity.upload_bandwidth
        )

    def test_literal_accounting_barely_saves(self, model):
        """The paper-as-typeset accounting caps savings at ~r/R — the
        inconsistency our default reading fixes."""
        p = uniform_jump_matrix(6, 0.6, 0.2)
        literal = solve_p2p_channel_capacity(
            model, p, 1.0, peer_upload=2 * r,
            demand="servers", accounting="literal",
        )
        assert literal.peer_offload_ratio < 0.1
