"""Tests for repro.queueing.transitions: viewing-behaviour matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.transitions import (
    TransitionModel,
    empirical_transition_matrix,
    leave_probabilities,
    mixture_matrix,
    sequential_matrix,
    skip_forward_matrix,
    uniform_jump_matrix,
    validate_transition_matrix,
)


class TestValidate:
    def test_accepts_substochastic(self):
        p = np.array([[0.0, 0.5], [0.2, 0.0]])
        out = validate_transition_matrix(p)
        assert out.shape == (2, 2)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            validate_transition_matrix(np.zeros((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_transition_matrix(np.array([[-0.1, 0.5], [0.0, 0.0]]))

    def test_rejects_superstochastic_row(self):
        with pytest.raises(ValueError, match="substochastic"):
            validate_transition_matrix(np.array([[0.7, 0.5], [0.0, 0.0]]))

    def test_rejects_no_departure(self):
        # Stochastic matrix (spectral radius 1): users never leave.
        p = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="depart"):
            validate_transition_matrix(p)

    def test_leave_probabilities(self):
        p = np.array([[0.0, 0.6], [0.3, 0.0]])
        leave = leave_probabilities(p)
        assert leave == pytest.approx([0.4, 0.7])


class TestBuilders:
    def test_sequential_structure(self):
        p = sequential_matrix(4, continue_prob=0.8)
        assert p[0, 1] == pytest.approx(0.8)
        assert p[2, 3] == pytest.approx(0.8)
        assert p[3].sum() == 0.0  # last chunk departs
        assert np.count_nonzero(p) == 3

    def test_sequential_single_chunk(self):
        p = sequential_matrix(1, continue_prob=0.5)
        assert p.shape == (1, 1)
        assert p.sum() == 0.0

    def test_sequential_rejects_certain_continuation(self):
        with pytest.raises(ValueError):
            sequential_matrix(3, continue_prob=1.0)

    def test_uniform_jump_rows(self):
        p = uniform_jump_matrix(5, continue_prob=0.6, jump_prob=0.2)
        validate_transition_matrix(p)
        # Row 0: continue 0.6 to chunk 1, plus 0.2/4 to each other chunk.
        assert p[0, 1] == pytest.approx(0.6 + 0.05)
        assert p[0, 2] == pytest.approx(0.05)
        # Last row: no continuation, only jumps.
        assert p[4].sum() == pytest.approx(0.2)

    def test_uniform_jump_needs_departure_mass(self):
        with pytest.raises(ValueError):
            uniform_jump_matrix(5, continue_prob=0.9, jump_prob=0.1)

    def test_skip_forward_only_moves_forward(self):
        p = skip_forward_matrix(6)
        lower = np.tril(p)
        assert np.all(lower == 0.0)
        validate_transition_matrix(p)

    def test_skip_forward_rows_bounded(self):
        p = skip_forward_matrix(6, continue_prob=0.7, skip_prob=0.2)
        assert np.all(p.sum(axis=1) <= 0.9 + 1e-9)

    def test_mixture(self):
        a = sequential_matrix(4, 0.9)
        b = uniform_jump_matrix(4, 0.5, 0.2)
        mixed = mixture_matrix([a, b], [0.25, 0.75])
        assert np.allclose(mixed, 0.25 * a + 0.75 * b)
        validate_transition_matrix(mixed)

    def test_mixture_rejects_bad_weights(self):
        a = sequential_matrix(3, 0.9)
        with pytest.raises(ValueError):
            mixture_matrix([a, a], [0.6, 0.6])

    def test_mixture_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            mixture_matrix(
                [sequential_matrix(3, 0.9), sequential_matrix(4, 0.9)], [0.5, 0.5]
            )

    @given(
        n=st.integers(min_value=1, max_value=12),
        cont=st.floats(min_value=0.0, max_value=0.7),
        jump=st.floats(min_value=0.0, max_value=0.25),
    )
    @settings(max_examples=50, deadline=None)
    def test_builders_always_valid(self, n, cont, jump):
        if cont + jump >= 1.0:
            return
        validate_transition_matrix(uniform_jump_matrix(n, cont, jump))


class TestEmpirical:
    def test_recovers_observed_frequencies(self):
        counts = np.array([[0.0, 90.0], [0.0, 0.0]])
        departures = np.array([10.0, 100.0])
        p = empirical_transition_matrix(counts, departures, prior_strength=0.0)
        assert p[0, 1] == pytest.approx(0.9)
        assert p[1].sum() == pytest.approx(0.0)

    def test_falls_back_to_prior_when_no_data(self):
        prior = sequential_matrix(3, 0.9)
        p = empirical_transition_matrix(
            np.zeros((3, 3)), np.zeros(3), prior=prior
        )
        assert np.allclose(p, prior)

    def test_smoothing_blends_toward_prior(self):
        prior = sequential_matrix(2, 0.5)
        counts = np.array([[0.0, 10.0], [0.0, 0.0]])
        departures = np.array([0.0, 10.0])
        p = empirical_transition_matrix(
            counts, departures, prior=prior, prior_strength=10.0
        )
        # Row 0 blends 10 observed transitions with 10 pseudo-counts at 0.5.
        assert p[0, 1] == pytest.approx((10.0 + 10.0 * 0.5) / 20.0)

    def test_result_always_valid(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=(5, 5)).astype(float)
        np.fill_diagonal(counts, 0.0)
        departures = rng.integers(1, 30, size=5).astype(float)
        p = empirical_transition_matrix(counts, departures)
        validate_transition_matrix(p)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            empirical_transition_matrix(
                np.array([[-1.0, 0.0], [0.0, 0.0]]), np.zeros(2)
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            empirical_transition_matrix(np.zeros((2, 2)), np.zeros(3))


class TestTransitionModel:
    def test_named_constructors(self):
        seq = TransitionModel.sequential(5)
        vcr = TransitionModel.vcr(5)
        assert seq.num_chunks == 5
        assert vcr.num_chunks == 5
        assert seq.name == "sequential"

    def test_departure_probs_shape(self):
        model = TransitionModel.vcr(4)
        assert model.departure_probs().shape == (4,)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            TransitionModel("bad", np.array([[1.5]]))
