"""Failure injection: VM boot failures and the scheduler's retry path."""

import pytest

from repro.cloud.cluster import VirtualClusterSpec
from repro.cloud.vm import VMPool
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng


def spec(max_vms=20):
    return VirtualClusterSpec("standard", 0.6, 0.45, max_vms, 1.25e6)


class TestBootFailures:
    def test_instant_mode_failures_counted(self):
        pool = VMPool(
            spec(), boot_failure_rate=0.5, rng=make_rng(1, "boot")
        )
        pool.launch(20)
        assert pool.running + pool.boot_failures == 20
        assert 3 <= pool.boot_failures <= 17  # ~Binomial(20, .5)

    def test_timed_mode_failed_vm_returns_to_off(self):
        sim = Simulator()
        pool = VMPool(
            spec(max_vms=1), sim,
            boot_failure_rate=0.999999, rng=make_rng(2, "boot"),
        )
        pool.launch(1)
        sim.run(until=30.0)
        assert pool.running == 0
        assert pool.boot_failures == 1
        assert pool.available_to_launch == 1  # reusable after failure

    def test_scale_to_retries_after_failures(self):
        """The hourly scheduler converges despite flaky boots: repeated
        scale_to calls eventually reach the target."""
        pool = VMPool(
            spec(max_vms=10), boot_failure_rate=0.3, rng=make_rng(3, "boot")
        )
        for _ in range(50):
            pool.scale_to(5)
            if pool.running >= 5:
                break
        assert pool.running == 5

    def test_zero_rate_never_fails(self):
        pool = VMPool(spec(), boot_failure_rate=0.0)
        pool.launch(20)
        assert pool.boot_failures == 0
        assert pool.running == 20

    def test_failure_rate_requires_rng(self):
        pool = VMPool(spec(), boot_failure_rate=0.5)
        with pytest.raises(ValueError, match="rng"):
            pool.launch(1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            VMPool(spec(), boot_failure_rate=1.0)
        with pytest.raises(ValueError):
            VMPool(spec(), boot_failure_rate=-0.1)

    def test_failures_deterministic_with_seed(self):
        counts = []
        for _ in range(2):
            pool = VMPool(
                spec(), boot_failure_rate=0.4, rng=make_rng(9, "boot")
            )
            pool.launch(20)
            counts.append(pool.boot_failures)
        assert counts[0] == counts[1]
