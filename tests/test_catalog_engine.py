"""Tests for the sharded catalog engine (repro.sim.shard).

The engine's headline guarantee is byte-determinism: a fixed-seed
catalog run produces identical results no matter how many worker
processes execute it, and the epoch merge is independent of the order
in which shard reports arrive.  These tests pin both properties down,
plus the catalog workload's partition/trace stability and the registry
surface.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, open_run
from repro.sim.shard import (
    ChannelShard,
    EpochReport,
    ShardedSimulator,
    merge_epoch_reports,
    summarize_catalog,
)
from repro.workload.catalog import (
    CatalogConfig,
    build_shard_trace,
    catalog_config,
    channel_sessions,
    channel_shapes,
    shard_channel_ids,
)

RESULT_ARRAYS = (
    "times", "cloud_used", "peer_used", "provisioned", "shortfall",
    "populations", "quality_times", "quality",
)


def small_config(**overrides):
    params = dict(
        num_channels=8,
        chunks_per_channel=4,
        horizon_hours=0.5,
        arrival_rate=0.5,
        num_shards=4,
        dt=60.0,
        interval_minutes=10.0,
        phase_jitter_hours=6.0,
        flash_fraction=0.5,
        flash_hour=0.25,
        flash_width_hours=0.25,
        flash_amplitude=4.0,
    )
    params.update(overrides)
    return catalog_config(**params)


def run_via_api(config, workers=None):
    """Run a catalog config through the public api surface.

    ``workers=None`` exercises the deprecated ``REPRO_CATALOG_JOBS``
    environment fallback (the only remaining spelling of "let the env
    decide" now that the ``run_catalog`` shim is gone).
    """
    with open_run(EngineConfig(spec=config, workers=workers)) as run:
        return run.result()


# ----------------------------------------------------------------------
# Catalog workload
# ----------------------------------------------------------------------

class TestCatalogWorkload:
    @pytest.mark.parametrize("num_shards", [1, 3, 4, 50])
    def test_partition_is_disjoint_and_complete(self, num_shards):
        config = small_config(num_shards=num_shards)
        seen = []
        for shard in range(config.effective_shards):
            seen.extend(shard_channel_ids(config, shard))
        assert sorted(seen) == list(range(config.num_channels))
        assert len(seen) == len(set(seen))

    def test_effective_shards_clamped_to_channels(self):
        config = small_config(num_shards=50)
        assert config.effective_shards == config.num_channels

    def test_channel_traces_independent_of_shard_count(self):
        """A channel's sessions depend only on (seed, channel id)."""
        few = small_config(num_shards=2)
        many = small_config(num_shards=8)
        shapes_few = channel_shapes(few)
        shapes_many = channel_shapes(many)
        for c in range(few.num_channels):
            assert shapes_few[c] == shapes_many[c]
            a = channel_sessions(few, shapes_few[c])
            b = channel_sessions(many, shapes_many[c])
            for left, right in zip(a, b):
                assert np.array_equal(left, right)

    def test_shard_trace_interleaves_channels_sorted(self):
        config = small_config()
        trace = build_shard_trace(config, shard_channel_ids(config, 0))
        times = [s.arrival_time for s in trace.sessions]
        assert times == sorted(times)
        assert {s.channel for s in trace.sessions} <= set(
            shard_channel_ids(config, 0)
        )

    def test_flash_crowd_adds_arrivals(self):
        quiet = small_config(flash_fraction=0.0, phase_jitter_hours=0.0)
        surged = small_config(flash_fraction=1.0, phase_jitter_hours=0.0,
                              flash_amplitude=6.0)
        def count(cfg):
            return sum(
                channel_sessions(cfg, shape)[0].size
                for shape in channel_shapes(cfg)
            )
        assert count(surged) > 1.3 * count(quiet)

    def test_target_population_sets_rate_by_littles_law(self):
        config = catalog_config(
            num_channels=8, chunks_per_channel=4, target_population=1000,
        )
        session = config.visits_per_session() * config.constants.chunk_duration
        assert config.mean_arrival_rate * session == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(num_channels=0)
        with pytest.raises(ValueError):
            small_config(flash_fraction=1.5)
        with pytest.raises(ValueError):
            CatalogConfig(mode="multicast")
        with pytest.raises(ValueError):
            shard_channel_ids(small_config(), 99)


# ----------------------------------------------------------------------
# Engine determinism
# ----------------------------------------------------------------------

class TestShardedDeterminism:
    def test_jobs_do_not_change_results(self):
        """jobs=1 (in-process) and jobs=3 (uneven worker split) must be
        byte-identical: same metrics, same per-step series."""
        config = small_config()
        with ShardedSimulator(config, jobs=1) as engine:
            serial = engine.run()
        with ShardedSimulator(config, jobs=3) as engine:
            parallel = engine.run()
        assert summarize_catalog(serial) == summarize_catalog(parallel)
        for name in RESULT_ARRAYS:
            a, b = getattr(serial, name), getattr(parallel, name)
            assert a.tobytes() == b.tobytes(), name
        assert serial.channel_populations == parallel.channel_populations
        assert serial.vm_cost_series == parallel.vm_cost_series

    def test_env_jobs_fallback(self, monkeypatch):
        config = small_config(horizon_hours=0.25)
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "2")
        with pytest.warns(DeprecationWarning, match="REPRO_CATALOG_JOBS"):
            from_env = summarize_catalog(run_via_api(config))
        explicit = summarize_catalog(run_via_api(config, workers=1))
        assert from_env == explicit

    def test_env_garbage_named_in_error(self, monkeypatch):
        """Garbage REPRO_CATALOG_JOBS must fail with a message naming
        the variable, not a bare int() traceback."""
        config = small_config(horizon_hours=0.25)
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "auto")
        with pytest.raises(ValueError, match="REPRO_CATALOG_JOBS"):
            run_via_api(config)

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_env_clamped_to_serial(self, raw, monkeypatch):
        """0/negative worker counts clamp to 1 instead of being passed
        through (results are jobs-invariant, so serial == correct)."""
        config = small_config(horizon_hours=0.25)
        monkeypatch.setenv("REPRO_CATALOG_JOBS", raw)
        with pytest.warns(DeprecationWarning, match="REPRO_CATALOG_JOBS"):
            clamped = summarize_catalog(run_via_api(config))
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "1")
        with pytest.warns(DeprecationWarning, match="REPRO_CATALOG_JOBS"):
            serial = summarize_catalog(run_via_api(config))
        assert clamped == serial

    def test_env_blank_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "  ")
        config = small_config(horizon_hours=0.25)
        assert summarize_catalog(run_via_api(config)) == \
            summarize_catalog(run_via_api(config, workers=1))

    def test_reports_carry_only_owned_channels(self):
        config = small_config()
        shard = ChannelShard(config, 1)
        report = shard.advance_epoch(config.interval_seconds)
        assert [s.channel_id for s in report.stats] == shard.channel_ids
        assert set(report.channel_populations) == set(shard.channel_ids)


# ----------------------------------------------------------------------
# Merge: order independence (property) and lock-step enforcement
# ----------------------------------------------------------------------

def _synthetic_reports(num_shards=4, steps=5):
    rng = np.random.default_rng(7)
    step_times = np.arange(1, steps + 1) * 30.0
    reports = []
    for shard in range(num_shards):
        reports.append(EpochReport(
            shard_index=shard,
            t_end=float(step_times[-1]),
            stats=[],
            step_times=step_times.copy(),
            cloud_used=rng.random(steps),
            peer_used=rng.random(steps),
            provisioned=rng.random(steps),
            shortfall=rng.random(steps),
            populations=rng.integers(0, 100, steps),
            quality_samples=[(150.0, int(rng.integers(0, 50)),
                              int(rng.integers(50, 100)))],
            arrivals=int(rng.integers(0, 100)),
            departures=int(rng.integers(0, 100)),
            retrievals=int(rng.integers(0, 100)),
            unsmooth=int(rng.integers(0, 10)),
            sojourn_sum=float(rng.random()),
            upload_sum=float(rng.random()),
            upload_count=int(rng.integers(1, 10)),
            peak_step_events=int(rng.integers(0, 500)),
            channel_populations={shard * 10: int(rng.integers(0, 50))},
        ))
    return reports


class TestMerge:
    @settings(deadline=None, max_examples=40)
    @given(order=st.permutations(list(range(4))))
    def test_merge_is_order_independent(self, order):
        """Workers finish in arbitrary order; the merge must not care."""
        reports = _synthetic_reports()
        reference = merge_epoch_reports(reports)
        permuted = merge_epoch_reports([reports[i] for i in order])
        for name in ("cloud_used", "peer_used", "provisioned", "shortfall",
                     "populations", "step_times"):
            assert getattr(reference, name).tobytes() == \
                getattr(permuted, name).tobytes(), name
        assert reference.quality_samples == permuted.quality_samples
        assert reference.sojourn_sum == permuted.sojourn_sum
        assert reference.upload_sum == permuted.upload_sum
        assert reference.channel_populations == permuted.channel_populations
        assert reference.arrivals == permuted.arrivals
        assert reference.peak_step_events == permuted.peak_step_events

    def test_merge_rejects_lockstep_divergence(self):
        reports = _synthetic_reports()
        reports[2].step_times = reports[2].step_times + 1.0
        with pytest.raises(ValueError, match="lock-step"):
            merge_epoch_reports(reports)

    def test_merge_rejects_duplicate_shards(self):
        reports = _synthetic_reports()
        reports[1].shard_index = 0
        with pytest.raises(ValueError, match="duplicate"):
            merge_epoch_reports(reports)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_epoch_reports([])


# ----------------------------------------------------------------------
# Registry + summary surface
# ----------------------------------------------------------------------

class TestCatalogRegistry:
    SMALL = {
        "num_channels": 8, "chunks_per_channel": 4, "horizon_hours": 0.5,
        "arrival_rate": 0.5, "num_shards": 4, "dt": 60.0,
        "interval_minutes": 10.0, "mode": "client-server",
    }

    def test_catalog_scenarios_registered(self):
        from repro.experiments import registry

        for name in ("catalog-zipf", "catalog-diurnal", "catalog-flash"):
            spec = registry.get(name)
            assert "catalog" in spec.tags
            assert spec.run is not None and spec.build is None

    def test_run_cell_returns_flat_metrics(self):
        from repro.experiments import registry

        metrics = registry.get("catalog-flash").run_cell(self.SMALL, seed=2011)
        for key in ("arrivals", "peak_population", "average_quality",
                    "mean_reserved_mbps", "steps", "num_shards"):
            assert key in metrics
            assert isinstance(metrics[key], (int, float))
        assert metrics["num_shards"] == 4
        assert metrics["arrivals"] > 0

    def test_summary_quality_within_bounds(self):
        result = run_via_api(small_config(horizon_hours=0.25), workers=1)
        metrics = summarize_catalog(result)
        assert 0.0 <= metrics["average_quality"] <= 1.0
        assert 0.0 <= metrics["smooth_retrieval_fraction"] <= 1.0
        assert metrics["steps"] == result.times.size
