"""Tests for repro.vod.simulator: the fluid VoD simulator."""

import numpy as np
import pytest

from repro.vod.channel import ChannelSpec, make_uniform_channels
from repro.vod.simulator import VoDSimulator, VoDSystemConfig
from repro.workload.trace import Session, Trace

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


def make_trace(sessions):
    return Trace(config_summary={}, sessions=sessions)


def channels(num=1, chunks=4):
    return make_uniform_channels(num, chunks, r, T0)


def config(**kw):
    defaults = dict(mode="client-server", dt=10.0, user_rate_cap=R, seed=1)
    defaults.update(kw)
    return VoDSystemConfig(**defaults)


class TestArrivalsAndDepartures:
    def test_sessions_admitted_at_arrival_time(self):
        trace = make_trace(
            [
                Session(5.0, 0, 0, 100.0),
                Session(25.0, 0, 1, 100.0),
            ]
        )
        sim = VoDSimulator(channels(), trace, config())
        sim.advance_to(10.0)
        assert sim.population() == 1
        sim.advance_to(30.0)
        assert sim.population() == 2
        assert sim.arrivals == 2

    def test_tracker_sees_arrivals(self):
        trace = make_trace([Session(1.0, 0, 2, 123.0)])
        sim = VoDSimulator(channels(), trace, config())
        sim.advance_to(20.0)
        stats = sim.tracker.close_interval()[0]
        assert stats.arrivals == 1
        assert stats.start_chunk_counts[2] == 1
        assert stats.mean_upload_capacity == pytest.approx(123.0)

    def test_sessions_for_unknown_channels_skipped(self):
        trace = make_trace([Session(1.0, 99, 0, 1.0)])
        sim = VoDSimulator(channels(), trace, config())
        sim.advance_to(10.0)
        assert sim.population() == 0


class TestDownloadDynamics:
    def test_download_completes_with_capacity(self):
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config())
        # Full VM bandwidth for chunk 0: 15 MB at 1.25 MB/s = 12 s.
        sim.set_cloud_capacity(0, np.array([R, 0, 0, 0]))
        sim.advance_to(30.0)
        store = sim.stores[0]
        assert store.owned[0, 0]
        assert sim.quality.total_retrievals == 1
        assert sim.quality.smooth_retrieval_fraction == 1.0

    def test_no_capacity_means_no_progress(self):
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config())
        sim.advance_to(400.0)
        assert sim.quality.total_retrievals == 0
        # The stalled user shows up as unsmooth at the quality sample...
        # (their retrieval hasn't completed, so smoothness is judged on
        # completions; the population is still 1).
        assert sim.population() == 1

    def test_slow_download_marked_unsmooth(self):
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config())
        # Capacity so low the chunk takes ~600 s > T0.
        sim.set_cloud_capacity(0, np.array([25_000.0, 0, 0, 0]))
        sim.advance_to(700.0)
        assert sim.quality.total_retrievals == 1
        assert sim.quality.smooth_retrieval_fraction == 0.0

    def test_playback_pacing_holds_fast_downloads(self):
        """A user must not move to chunk 2 before chunk 1's playback ends."""
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config(seed=3))
        sim.set_cloud_capacity(0, np.full(4, R))
        sim.advance_to(100.0)  # download done at ~12 s, playback runs to 300
        store = sim.stores[0]
        assert store.owned[0, 0]
        # Still watching chunk 0 (holding), not downloading chunk 1.
        assert store.downloaders_per_chunk().sum() == 0
        sim.advance_to(320.0)
        # The hold released at ~310: the user departed, is downloading the
        # next chunk, or already finished it (fast) and holds again.
        downloading = store.downloaders_per_chunk().sum() > 0
        departed = store.num_active == 0
        progressed = bool(store.owned[0, 1:].any())
        assert downloading or departed or progressed

    def test_session_duration_tied_to_playback_not_bandwidth(self):
        """With abundant bandwidth a 4-chunk video still takes ~4*T0."""
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        # Strictly sequential behaviour with high continue probability.
        from repro.queueing.transitions import sequential_matrix

        spec = ChannelSpec(0, 4, r, T0, sequential_matrix(4, 0.95))
        sim = VoDSimulator([spec], trace, config(seed=5))
        sim.set_cloud_capacity(0, np.full(4, 10 * R))
        sim.advance_to(2 * T0)
        # After 2 playback slots the user cannot have watched all 4 chunks.
        assert sim.stores[0].num_active + sim.departures == 1
        assert sim.stores[0].owned[0].sum() <= 3


class TestQualityMetric:
    def test_quality_sampled_every_window(self):
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config())
        sim.set_cloud_capacity(0, np.full(4, R))
        sim.advance_to(1000.0)
        times = [s.time for s in sim.quality.samples]
        assert times == pytest.approx([300.0, 600.0, 900.0])

    def test_quality_perfect_with_ample_capacity(self):
        trace = make_trace(
            [Session(float(i), 0, 0, 0.0) for i in range(10)]
        )
        sim = VoDSimulator(channels(), trace, config())
        sim.set_cloud_capacity(0, np.full(4, 20 * R))
        sim.advance_to(1200.0)
        assert sim.quality.average_quality == 1.0

    def test_quality_degrades_with_starved_capacity(self):
        trace = make_trace(
            [Session(float(i), 0, 0, 0.0) for i in range(20)]
        )
        sim = VoDSimulator(channels(), trace, config())
        sim.set_cloud_capacity(0, np.full(4, 20_000.0))  # well below demand
        sim.advance_to(1800.0)
        assert sim.quality.average_quality < 1.0


class TestP2PMode:
    def test_peers_reduce_cloud_usage(self):
        sessions = [Session(float(i) * 5.0, 0, 0, 2 * r) for i in range(12)]
        cloud_only = VoDSimulator(
            channels(), make_trace(sessions), config(mode="client-server")
        )
        p2p = VoDSimulator(
            channels(), make_trace(sessions), config(mode="p2p")
        )
        for sim in (cloud_only, p2p):
            sim.set_cloud_capacity(0, np.full(4, 5 * R))
            sim.advance_to(1800.0)
        cs_cloud = sum(s.cloud_used for s in cloud_only.bandwidth)
        p2p_cloud = sum(s.cloud_used for s in p2p.bandwidth)
        p2p_peer = sum(s.peer_used for s in p2p.bandwidth)
        assert p2p_peer > 0.0
        assert p2p_cloud < cs_cloud

    def test_mean_peer_upload(self):
        sessions = [Session(0.0, 0, 0, 100.0), Session(0.0, 0, 1, 300.0)]
        sim = VoDSimulator(channels(), make_trace(sessions), config(mode="p2p"))
        sim.advance_to(10.0)
        assert sim.mean_peer_upload() == pytest.approx(200.0)


class TestInterface:
    def test_capacity_validation(self):
        sim = VoDSimulator(channels(), make_trace([]), config())
        with pytest.raises(ValueError):
            sim.set_cloud_capacity(0, np.zeros(3))
        with pytest.raises(ValueError):
            sim.set_cloud_capacity(0, np.array([-1.0, 0, 0, 0]))
        with pytest.raises(KeyError):
            sim.set_cloud_capacity(5, np.zeros(4))

    def test_cannot_advance_backwards(self):
        sim = VoDSimulator(channels(), make_trace([]), config())
        sim.advance_to(100.0)
        with pytest.raises(ValueError):
            sim.advance_to(50.0)

    def test_result_snapshot(self):
        trace = make_trace([Session(0.0, 0, 0, 0.0)])
        sim = VoDSimulator(channels(), trace, config())
        sim.set_cloud_capacity(0, np.full(4, R))
        sim.advance_to(600.0)
        result = sim.result()
        assert result.arrivals == 1
        assert len(result.bandwidth) == 60
        t, cloud, peer = result.bandwidth_series()
        assert t.shape == cloud.shape == peer.shape

    def test_determinism(self):
        sessions = [Session(float(i), 0, 0, 50_000.0) for i in range(20)]
        outcomes = []
        for _ in range(2):
            sim = VoDSimulator(channels(), make_trace(list(sessions)), config(seed=9))
            sim.set_cloud_capacity(0, np.full(4, 2 * R))
            sim.advance_to(900.0)
            outcomes.append(
                (sim.departures, sim.quality.total_retrievals,
                 tuple(s.cloud_used for s in sim.bandwidth))
            )
        assert outcomes[0] == outcomes[1]
