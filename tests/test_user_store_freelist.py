"""Property tests for UserStore slot reuse and batch operations.

The free-list contract: a live user's id never changes or collides
(tracker/overlay can key on it for the whole session), departed slots
are reclaimed for later arrivals so long runs stop growing the arrays
monotonically, and every derived structure — the arrival-ordered index
caches, the per-chunk owner counts, the peer-supply mirror — stays
consistent with the ground-truth arrays through arbitrary interleavings
of arrivals, completions, holds and departures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vod.user import UserStore

NUM_CHUNKS = 5


def check_invariants(store: UserStore) -> None:
    """Derived state must agree with the ground-truth arrays."""
    idx = store.active_indices()
    # Arrival order: strictly increasing sequence numbers, all active.
    assert np.all(store.active[idx])
    assert np.all(np.diff(store.seq[idx]) > 0)
    assert idx.size == store.num_active
    # Incremental owner counts match a fresh matrix reduction.
    truth = (
        store.owned[idx].sum(axis=0)
        if idx.size
        else np.zeros(NUM_CHUNKS, dtype=np.int64)
    )
    np.testing.assert_array_equal(store.owners_per_chunk(), truth)
    # Peer-supply mirror: column p of the mirror is the p-th active user
    # in arrival order (tombstones are all-False / zero-upload).
    owned_mirror, upload_mirror = store.peer_supply_mirror()
    live_cols = store._col_of[idx]
    np.testing.assert_array_equal(
        owned_mirror[:, live_cols], store.owned[idx].T
    )
    np.testing.assert_array_equal(upload_mirror[live_cols], store.upload[idx])
    dead = np.ones(upload_mirror.size, dtype=bool)
    dead[live_cols] = False
    assert not owned_mirror[:, dead].any()
    assert not upload_mirror[dead].any()


@st.composite
def operation_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "complete", "hold", "release", "depart"]),
                st.integers(0, 2**31 - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestFreeListProperties:
    @settings(max_examples=60, deadline=None)
    @given(operation_sequences())
    def test_random_interleavings_keep_invariants(self, ops):
        store = UserStore(NUM_CHUNKS, capacity=2)
        now = 0.0
        live = {}  # uid -> arrival order stamp (for stability checks)
        stamp = 0
        peak_live = 0
        for op, r in ops:
            now += 1.0
            rng = np.random.default_rng(r)
            if op == "add":
                uid = store.add_user(now, int(rng.integers(NUM_CHUNKS)),
                                     float(rng.uniform(0, 100)))
                # A reissued id must come from a departed user, never a
                # live one (uid stability for tracker/overlay).
                assert uid not in live
                live[uid] = stamp
                stamp += 1
            elif live:
                uid = sorted(live)[int(rng.integers(len(live)))]
                if op == "complete":
                    if store.chunk[uid] >= 0:
                        store.complete_chunk(uid, now, bool(rng.integers(2)))
                elif op == "hold":
                    if store.chunk[uid] >= 0:
                        finished = int(store.chunk[uid])
                        store.begin_hold(uid, now + 5.0,
                                         int(rng.integers(NUM_CHUNKS)), finished)
                elif op == "release":
                    for due in store.due_holds(now):
                        store.start_chunk_download(
                            int(due), int(store.hold_next[due]), now
                        )
                elif op == "depart":
                    store.depart(uid)
                    del live[uid]
            peak_live = max(peak_live, len(live))
            check_invariants(store)
        # Slot reclamation: the arrays' high-water mark tracks the peak
        # *concurrent* population (+ growth slack), not total arrivals.
        assert len(store) <= max(peak_live, 1) + store.free_slots

    def test_departed_slot_is_reused(self):
        store = UserStore(3)
        a = store.add_user(0.0, 0, 1.0)
        b = store.add_user(0.0, 1, 2.0)
        store.depart(a)
        c = store.add_user(1.0, 2, 3.0)
        assert c == a  # LIFO free-list reissues the reclaimed slot
        assert len(store) == 2  # no new slot was allocated
        assert store.num_active == 2
        # The reused slot carries none of the departed user's state.
        assert not store.owned[c].any()
        assert store.retrievals[c] == 0
        assert b != c

    def test_uids_stable_while_active(self):
        store = UserStore(3)
        keep = store.add_user(0.0, 0, 1.0)
        store.complete_chunk(keep, 1.0, True)
        for k in range(20):
            uid = store.add_user(float(k), 1, 1.0)
            store.depart(uid)
        # Churn around a long-lived user never disturbs its row.
        assert store.active[keep]
        assert store.owned[keep, 0]
        assert store.chunk[keep] == 0

    def test_batch_add_matches_scalar_adds(self):
        scalar = UserStore(4, capacity=2)
        batch = UserStore(4, capacity=2)
        # Interleave departures so the free-list path is exercised.
        for s in (scalar, batch):
            a = s.add_user(0.0, 0, 1.0)
            b = s.add_user(0.0, 1, 2.0)
            s.depart_many(np.asarray([a, b]))
        starts = np.asarray([2, 0, 3, 1, 2])
        uploads = np.asarray([5.0, 6.0, 7.0, 8.0, 9.0])
        got = batch.add_users(1.0, starts, uploads)
        want = [scalar.add_user(1.0, int(c), float(u))
                for c, u in zip(starts, uploads)]
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(
            scalar.active_indices(), batch.active_indices()
        )
        np.testing.assert_array_equal(
            scalar.seq[: len(scalar)], batch.seq[: len(batch)]
        )
        np.testing.assert_array_equal(
            scalar.upload[: len(scalar)], batch.upload[: len(batch)]
        )

    def test_batch_complete_and_depart_match_scalar(self):
        def build():
            s = UserStore(4)
            uids = [s.add_user(0.0, i % 4, float(i)) for i in range(6)]
            return s, uids

        scalar, uids_s = build()
        batch, uids_b = build()
        smooth = np.asarray([True, False, True, False, True, True])
        for uid, sm in zip(uids_s, smooth):
            scalar.complete_chunk(uid, 10.0, bool(sm))
        batch.complete_chunks(np.asarray(uids_b), 10.0, smooth)
        np.testing.assert_array_equal(scalar.owned[:6], batch.owned[:6])
        np.testing.assert_array_equal(
            scalar.unsmooth_retrievals[:6], batch.unsmooth_retrievals[:6]
        )
        np.testing.assert_array_equal(
            scalar.owners_per_chunk(), batch.owners_per_chunk()
        )
        for uid in uids_s[:3]:
            scalar.depart(uid)
        batch.depart_many(np.asarray(uids_b[:3]))
        np.testing.assert_array_equal(
            scalar.active_indices(), batch.active_indices()
        )
        np.testing.assert_array_equal(
            scalar.owners_per_chunk(), batch.owners_per_chunk()
        )
        assert scalar.free_slots == batch.free_slots

    def test_grant_chunks_updates_derived_state(self):
        store = UserStore(4)
        uid = store.add_user(0.0, 0, 1.0)
        store.grant_chunks(uid, [1, 3])
        np.testing.assert_array_equal(store.owners_per_chunk(), [0, 1, 0, 1])
        store.grant_chunks(uid, np.asarray([True, True, False, True]))
        np.testing.assert_array_equal(store.owners_per_chunk(), [1, 1, 0, 1])
        check_invariants(store)
