"""Tests for repro.workload: zipf, diurnal, pareto, arrivals, trace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import make_rng
from repro.workload.arrivals import (
    interval_rates,
    nonhomogeneous_poisson_times,
    poisson_arrival_times,
)
from repro.workload.diurnal import DiurnalPattern
from repro.workload.pareto import BoundedPareto
from repro.workload.trace import Trace, TraceConfig, generate_trace
from repro.workload.zipf import assign_channel_rates, zipf_weights


class TestZipf:
    def test_weights_normalized(self):
        w = zipf_weights(20, 0.8)
        assert w.sum() == pytest.approx(1.0)

    def test_weights_decreasing(self):
        w = zipf_weights(10, 0.8)
        assert np.all(np.diff(w) < 0)

    def test_exponent_zero_uniform(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_rates_sum_to_total(self):
        rates = assign_channel_rates(3.0, 7, 1.0)
        assert rates.sum() == pytest.approx(3.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)
        with pytest.raises(ValueError):
            assign_channel_rates(-1.0, 5)


class TestDiurnal:
    def test_daily_mean_is_one(self):
        pattern = DiurnalPattern()
        times = np.linspace(0, 86400, 24 * 60, endpoint=False)
        assert np.mean(pattern.factors(times)) == pytest.approx(1.0, rel=1e-3)

    def test_two_flash_crowds(self):
        """The pattern must peak around noon and in the evening."""
        pattern = DiurnalPattern()
        hours = np.arange(0, 24, 0.25)
        values = pattern.factors(hours * 3600.0)
        noon = values[(hours >= 11) & (hours <= 13)].max()
        evening = values[(hours >= 19) & (hours <= 22)].max()
        night = values[(hours >= 2) & (hours <= 5)].max()
        assert noon > 1.2 * night
        assert evening > noon  # the evening crowd is the larger one

    def test_periodicity(self):
        pattern = DiurnalPattern()
        assert pattern.factor(3600.0) == pytest.approx(
            pattern.factor(3600.0 + 86400.0)
        )

    def test_peak_factor(self):
        pattern = DiurnalPattern()
        hours = np.linspace(0, 24, 1440, endpoint=False)
        assert pattern.peak_factor() == pytest.approx(
            pattern.factors(hours * 3600).max(), rel=1e-6
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DiurnalPattern(base=-0.1)
        with pytest.raises(ValueError):
            DiurnalPattern(peak_hours=(12.0,), amplitudes=(1.0, 2.0), widths_hours=(1.0,))
        with pytest.raises(ValueError):
            DiurnalPattern(widths_hours=(0.0, 1.0))


class TestPareto:
    def test_samples_in_range(self):
        dist = BoundedPareto()
        samples = dist.sample(make_rng(0, "p"), 5000)
        assert samples.min() >= dist.low
        assert samples.max() <= dist.high

    def test_paper_defaults(self):
        dist = BoundedPareto()
        assert dist.low == pytest.approx(180e3 / 8)
        assert dist.high == pytest.approx(10e6 / 8)
        assert dist.shape == 3.0

    def test_mean_matches_empirical(self):
        dist = BoundedPareto()
        samples = dist.sample(make_rng(0, "p"), 200_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.02)

    def test_scaled_to_mean(self):
        dist = BoundedPareto().scaled_to_mean(50_000.0)
        assert dist.mean() == pytest.approx(50_000.0, rel=1e-9)

    def test_cdf_monotone(self):
        dist = BoundedPareto()
        xs = np.linspace(dist.low, dist.high, 100)
        cdf = dist.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0, abs=1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BoundedPareto(low=0.0)
        with pytest.raises(ValueError):
            BoundedPareto(low=10.0, high=5.0)
        with pytest.raises(ValueError):
            BoundedPareto().scaled_to_mean(-1.0)


class TestArrivals:
    def test_homogeneous_rate(self):
        rng = make_rng(1, "a")
        times = poisson_arrival_times(rng, rate=2.0, horizon=10_000.0)
        assert len(times) == pytest.approx(20_000, rel=0.05)
        assert np.all(np.diff(times) >= 0)

    def test_zero_rate_empty(self):
        rng = make_rng(1, "a")
        assert poisson_arrival_times(rng, 0.0, 100.0).size == 0

    def test_thinning_matches_mean_rate(self):
        rng = make_rng(2, "a")
        def rate_fn(t):
            return 1.0 + np.sin(2 * np.pi * t / 1000.0) ** 2
        times = nonhomogeneous_poisson_times(rng, rate_fn, 20_000.0, 2.0)
        # Mean of rate_fn is 1.5.
        assert len(times) == pytest.approx(30_000, rel=0.05)

    def test_thinning_rejects_bad_ceiling(self):
        rng = make_rng(3, "a")
        with pytest.raises(ValueError, match="ceiling"):
            nonhomogeneous_poisson_times(rng, lambda t: 5.0, 1000.0, 1.0)

    def test_interval_rates(self):
        times = [0.5, 1.5, 1.6, 2.5]
        rates = interval_rates(times, horizon=3.0, interval=1.0)
        assert rates == pytest.approx([1.0, 2.0, 1.0])

    @given(rate=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_interval_rates_average(self, rate):
        rng = make_rng(4, "a")
        horizon = 5000.0
        times = poisson_arrival_times(rng, rate, horizon)
        rates = interval_rates(times, horizon, 500.0)
        assert rates.mean() == pytest.approx(rate, rel=0.25)


class TestTrace:
    def make_config(self, **kw):
        defaults = dict(
            num_channels=4,
            chunks_per_channel=6,
            horizon_seconds=6 * 3600.0,
            mean_total_arrival_rate=0.2,
            seed=11,
        )
        defaults.update(kw)
        return TraceConfig(**defaults)

    def test_deterministic(self):
        a = generate_trace(self.make_config())
        b = generate_trace(self.make_config())
        assert len(a) == len(b)
        assert all(
            x.arrival_time == y.arrival_time and x.channel == y.channel
            for x, y in zip(a.sessions, b.sessions)
        )

    def test_different_seeds_differ(self):
        a = generate_trace(self.make_config(seed=1))
        b = generate_trace(self.make_config(seed=2))
        assert [s.arrival_time for s in a.sessions[:20]] != [
            s.arrival_time for s in b.sessions[:20]
        ]

    def test_sessions_sorted(self):
        trace = generate_trace(self.make_config())
        times = trace.arrival_times()
        assert np.all(np.diff(times) >= 0)

    def test_zipf_channel_shares(self):
        trace = generate_trace(
            self.make_config(mean_total_arrival_rate=1.0, horizon_seconds=86400.0)
        )
        counts = [len(trace.sessions_for_channel(c)) for c in range(4)]
        # Channel 0 is most popular, channel 3 least.
        assert counts[0] > counts[3]

    def test_alpha_start_split(self):
        trace = generate_trace(
            self.make_config(alpha=0.8, mean_total_arrival_rate=1.0)
        )
        starts = [s.start_chunk for s in trace.sessions]
        frac0 = sum(1 for s in starts if s == 0) / len(starts)
        assert frac0 == pytest.approx(0.8 + 0.2 / 6, abs=0.05)

    def test_upload_capacities_in_pareto_range(self):
        trace = generate_trace(self.make_config())
        dist = BoundedPareto()
        for s in trace.sessions[:200]:
            assert dist.low <= s.upload_capacity <= dist.high

    def test_json_roundtrip(self, tmp_path):
        trace = generate_trace(self.make_config())
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = Trace.from_json(path)
        assert len(loaded) == len(trace)
        assert loaded.sessions[0] == trace.sessions[0]
        assert loaded.config_summary["seed"] == 11

    def test_explicit_channel_rates(self):
        config = self.make_config()
        trace = generate_trace(config, channel_rates=[0.5, 0.0, 0.0, 0.0])
        assert all(s.channel == 0 for s in trace.sessions)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            self.make_config(num_channels=0)
        with pytest.raises(ValueError):
            self.make_config(alpha=2.0)
        with pytest.raises(ValueError):
            self.make_config(horizon_seconds=0.0)
