"""Tests for :class:`repro.service.host.RunHost` (no HTTP involved).

The host contracts pinned here:

* lifecycle — a submitted run executes to DONE and its artifact bytes
  equal encoding the same config's ``open_run`` result directly;
* admission — ``max_concurrent`` bounds execution, overflow queues in
  FIFO order, and past ``queue_limit`` submission raises
  :class:`QueueFullError` (the 503 backpressure);
* control — cancel works QUEUED and RUNNING; pause parks the engine
  (no live shm segments) and resume completes with a byte-identical
  artifact; an explicit checkpoint request resolves to a loadable file;
* persistence — auto-checkpoints appear on the epoch cadence, graceful
  ``close()`` leaves interrupted runs re-adoptable, and a second host
  on the same state dir finishes them byte-identically.
"""

import asyncio
import json

import pytest

from repro.api import EngineConfig, open_run, resume
from repro.service import QueueFullError, RunHost, UnknownRunError
from repro.service.artifact import artifact_bytes, result_payload, sha256_hex
from repro.workload.catalog import catalog_config


def small_catalog(**overrides):
    knobs = dict(
        num_channels=6, chunks_per_channel=4, horizon_hours=0.5,
        arrival_rate=0.5, num_shards=4, dt=60.0, interval_minutes=10.0,
    )
    knobs.update(overrides)
    return catalog_config(**knobs)


def small_config(**overrides) -> EngineConfig:
    workers = overrides.pop("workers", 1)
    return EngineConfig(spec=small_catalog(**overrides), workers=workers)


def reference_artifact(config: EngineConfig) -> bytes:
    with open_run(config) as run:
        return artifact_bytes(result_payload(config.kind, run.result()))


async def wait_for_state(host, run_id, state, *, polls=2000):
    for _ in range(polls):
        if host.run_info(run_id)["state"] == state:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(
        f"run {run_id} never reached {state!r} "
        f"(now {host.run_info(run_id)['state']!r})"
    )


# ----------------------------------------------------------------------
# Lifecycle + artifact parity
# ----------------------------------------------------------------------
def test_hosted_run_artifact_matches_open_run():
    config = small_config()
    expected = sha256_hex(reference_artifact(config))

    async def scenario():
        host = RunHost(max_concurrent=2)
        await host.start()
        run_id = host.submit(config)
        assert await host.wait(run_id) == "done"
        info = host.run_info(run_id)
        data = host.artifact(run_id)
        assert sha256_hex(data) == expected == info["artifact_sha256"]
        assert info["epoch"] == info["epochs_total"]
        await host.close()

    asyncio.run(scenario())


def test_epoch_events_reach_subscribers_and_ring():
    config = small_config()

    async def scenario():
        host = RunHost(max_concurrent=1)
        await host.start()
        run_id = host.submit(config)
        replay, queue = host.subscribe(run_id)
        live = []
        while True:
            event = await queue.get()
            if event is None:
                break
            live.append(event)
        epochs = [e["data"]["index"] for e in live if e["event"] == "epoch"]
        total = host.run_info(run_id)["epochs_total"]
        assert epochs == list(range(1, total + 1))
        # A late subscriber replays the whole stream from the ring.
        replay, late_queue = host.subscribe(run_id, after=1)
        assert late_queue is None  # terminal: the replay is complete
        replayed = [
            e["data"]["index"] for e in replay if e["event"] == "epoch"
        ]
        assert replayed == list(range(2, total + 1))
        assert replay[-1]["event"] == "state"
        assert replay[-1]["data"]["state"] == "done"
        await host.close()

    asyncio.run(scenario())


def test_unknown_run_raises():
    async def scenario():
        host = RunHost()
        await host.start()
        with pytest.raises(UnknownRunError):
            host.run_info("r9999")
        with pytest.raises(UnknownRunError):
            host.pause("r9999")
        await host.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Admission: bounded concurrency + backpressure
# ----------------------------------------------------------------------
def test_queue_limit_backpressure():
    async def scenario():
        host = RunHost(max_concurrent=1, queue_limit=1)
        await host.start()
        first = host.submit(small_config(seed=1))
        second = host.submit(small_config(seed=2))  # fills the queue
        with pytest.raises(QueueFullError):
            host.submit(small_config(seed=3))
        assert await host.wait(first) == "done"
        assert await host.wait(second) == "done"
        await host.close()

    asyncio.run(scenario())


def test_queued_overflow_runs_fifo():
    async def scenario():
        host = RunHost(max_concurrent=1, queue_limit=4)
        await host.start()
        ids = [host.submit(small_config(seed=s)) for s in (1, 2, 3)]
        states = [await host.wait(run_id) for run_id in ids]
        assert states == ["done"] * 3
        await host.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Cancel
# ----------------------------------------------------------------------
def test_cancel_queued_and_running():
    async def scenario():
        host = RunHost(max_concurrent=1, queue_limit=4)
        await host.start()
        running = host.submit(small_config(seed=1))
        queued = host.submit(small_config(seed=2))
        host.cancel(queued)
        assert host.run_info(queued)["state"] == "cancelled"
        host.cancel(running)
        assert await host.wait(running) == "cancelled"
        with pytest.raises(RuntimeError):
            host.artifact(running)
        # Cancelling a terminal run purges the record.
        host.cancel(running)
        with pytest.raises(UnknownRunError):
            host.run_info(running)
        await host.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Pause / resume / checkpoint
# ----------------------------------------------------------------------
def test_pause_parks_engine_and_resume_is_byte_identical(tmp_path):
    config = small_config(workers=2)
    expected = sha256_hex(reference_artifact(config))

    async def scenario():
        host = RunHost(max_concurrent=1, state_dir=tmp_path)
        await host.start()
        run_id = host.submit(config)
        _, queue = host.subscribe(run_id)
        while True:  # pause after the first epoch lands
            event = await queue.get()
            if event and event["event"] == "epoch":
                break
        host.pause(run_id)
        await wait_for_state(host, run_id, "paused")
        with pytest.raises(RuntimeError):
            host.pause(run_id)  # only RUNNING pauses
        meta = json.loads(
            (tmp_path / "runs" / run_id / "meta.json").read_text()
        )
        assert meta["state"] == "paused"
        assert meta["shm_segments"] == []  # parked: no live segments
        host.resume_run(run_id)
        assert await host.wait(run_id) == "done"
        assert sha256_hex(host.artifact(run_id)) == expected
        await host.close()

    asyncio.run(scenario())


def test_checkpoint_request_resolves_to_resumable_file(tmp_path):
    config = small_config()
    expected = sha256_hex(reference_artifact(config))

    async def scenario():
        host = RunHost(max_concurrent=1, state_dir=tmp_path)
        await host.start()
        run_id = host.submit(config)
        await wait_for_state(host, run_id, "running")
        path = await host.request_checkpoint(run_id)
        assert path.endswith("run.ckpt")
        assert await host.wait(run_id) == "done"
        await host.close()
        return run_id, path

    run_id, path = asyncio.run(scenario())
    with resume(path) as resumed:
        data = artifact_bytes(
            result_payload(config.kind, resumed.result())
        )
    assert sha256_hex(data) == expected


def test_checkpoint_without_state_dir_rejected():
    async def scenario():
        host = RunHost(max_concurrent=1)
        await host.start()
        run_id = host.submit(small_config())
        with pytest.raises(RuntimeError, match="state dir"):
            host.request_checkpoint(run_id)
        await host.wait(run_id)
        await host.close()

    asyncio.run(scenario())


def test_auto_checkpoint_cadence(tmp_path):
    config = small_config()  # 3 epochs at these knobs

    async def scenario():
        host = RunHost(
            max_concurrent=1, state_dir=tmp_path, checkpoint_every=1
        )
        await host.start()
        run_id = host.submit(config)
        assert await host.wait(run_id) == "done"
        assert (tmp_path / "runs" / run_id / "run.ckpt").exists()
        assert (tmp_path / "runs" / run_id / "artifact.json").exists()
        await host.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# State-dir adoption (graceful restart)
# ----------------------------------------------------------------------
def test_graceful_close_then_adopt_finishes_byte_identically(tmp_path):
    config = small_config(workers=2)
    expected = sha256_hex(reference_artifact(config))

    async def first_host():
        host = RunHost(
            max_concurrent=1, state_dir=tmp_path, checkpoint_every=1
        )
        await host.start()
        run_id = host.submit(config)
        _, queue = host.subscribe(run_id)
        while True:
            event = await queue.get()
            if event and event["event"] == "epoch":
                break
        await host.close()  # parks the run mid-flight, checkpointed
        return run_id

    async def second_host(run_id):
        host = RunHost(max_concurrent=1, state_dir=tmp_path)
        await host.start()  # adoption requeues the interrupted run
        assert await host.wait(run_id) == "done"
        data = host.artifact(run_id)
        await host.close()
        return data

    run_id = asyncio.run(first_host())
    meta = json.loads((tmp_path / "runs" / run_id / "meta.json").read_text())
    assert meta["state"] == "queued"  # re-adoptable, not lost
    data = asyncio.run(second_host(run_id))
    assert sha256_hex(data) == expected


def test_adopted_done_run_still_serves_artifact(tmp_path):
    config = small_config()

    async def first_host():
        host = RunHost(max_concurrent=1, state_dir=tmp_path)
        await host.start()
        run_id = host.submit(config)
        assert await host.wait(run_id) == "done"
        data = host.artifact(run_id)
        await host.close()
        return run_id, data

    async def second_host(run_id):
        host = RunHost(state_dir=tmp_path)
        await host.start()
        info = host.run_info(run_id)
        assert info["state"] == "done"
        data = host.artifact(run_id)
        # New submissions never collide with adopted ids.
        new_id = host.submit(config)
        assert new_id != run_id
        assert await host.wait(new_id) == "done"
        await host.close()
        return data

    run_id, first = asyncio.run(first_host())
    second = asyncio.run(second_host(run_id))
    assert first == second
