"""Stochastic validation: the event-driven Jackson simulator vs analysis.

These tests are the reproduction's ground truth check for Section IV:
simulate the channel exactly as modeled (Poisson arrivals, exponential
service, probabilistic routing) and compare the measured sample-path
averages against the closed-form Erlang/Jackson/Proposition-1 results.
Tolerances are loose-ish because the horizons are kept CI-friendly.
"""

import numpy as np
import pytest

from repro.p2p.ownership import solve_ownership
from repro.queueing.capacity import CapacityModel, solve_channel_capacity
from repro.queueing.erlang import mmm_expected_number_in_system
from repro.queueing.jackson import external_arrival_vector, solve_traffic_equations
from repro.queueing.transitions import sequential_matrix, uniform_jump_matrix
from repro.vod.queue_sim import JacksonChannelSimulator

MU = 1.0 / 12.0  # paper's service rate: 12 s mean download per server


class TestSingleQueueAgainstErlang:
    @pytest.mark.parametrize("servers,lam", [(2, 0.12), (5, 0.35)])
    def test_mean_in_system_matches(self, servers, lam):
        # A "network" with a single queue and no routing.
        p = np.zeros((1, 1))
        sim = JacksonChannelSimulator(
            p, external_rate=lam, service_rate=MU,
            servers=np.array([servers]), alpha=1.0, seed=42,
        )
        result = sim.run(horizon=250_000.0, warmup=20_000.0)
        expected = mmm_expected_number_in_system(servers, lam / MU)
        assert result.mean_in_system[0] == pytest.approx(expected, rel=0.08)

    def test_sojourn_littles_law(self):
        p = np.zeros((1, 1))
        lam, servers = 0.3, 5
        sim = JacksonChannelSimulator(
            p, lam, MU, np.array([servers]), alpha=1.0, seed=7
        )
        result = sim.run(horizon=250_000.0, warmup=20_000.0)
        expected_l = mmm_expected_number_in_system(servers, lam / MU)
        # L = lambda W.
        assert result.mean_in_system[0] == pytest.approx(
            lam * result.mean_sojourn[0], rel=0.1
        )
        assert result.mean_sojourn[0] == pytest.approx(expected_l / lam, rel=0.1)


class TestNetworkAgainstTrafficEquations:
    def test_visit_counts_match(self):
        p = uniform_jump_matrix(4, 0.5, 0.2)
        lam = 0.05
        # Generous server counts: no effective queueing, pure routing test.
        sim = JacksonChannelSimulator(
            p, lam, MU, np.full(4, 50), alpha=0.8, seed=3
        )
        horizon = 300_000.0
        result = sim.run(horizon=horizon)
        traffic = solve_traffic_equations(
            p, external_arrival_vector(4, lam, 0.8)
        )
        measured_rates = result.completed_visits / horizon
        assert measured_rates == pytest.approx(traffic.arrival_rates, rel=0.07)

    def test_departures_balance_arrivals(self):
        p = uniform_jump_matrix(3, 0.4, 0.2)
        sim = JacksonChannelSimulator(
            p, 0.05, MU, np.full(3, 50), alpha=0.8, seed=5
        )
        result = sim.run(horizon=200_000.0)
        # In a stable system departures track arrivals (within the ~session
        # population still inside).
        assert abs(result.arrivals - result.departures) < 60


class TestCapacitySolverDeliversSmoothPlayback:
    def test_sojourn_below_t0_with_solved_capacity(self):
        """Provisioning m_i from the capacity solver must keep measured mean
        sojourn under T0 — the paper's core claim."""
        model = CapacityModel(
            streaming_rate=50_000.0, chunk_duration=300.0, vm_bandwidth=10e6 / 8
        )
        p = uniform_jump_matrix(4, 0.6, 0.2)
        lam = 0.08
        capacity = solve_channel_capacity(model, p, lam, alpha=0.8)
        sim = JacksonChannelSimulator(
            p, lam, model.service_rate, capacity.servers, alpha=0.8, seed=11
        )
        result = sim.run(horizon=300_000.0, warmup=30_000.0)
        for q in range(4):
            if result.completed_visits[q] > 100:
                assert result.mean_sojourn[q] <= 300.0 + 1e-9

    def test_one_less_server_violates_t0_under_load(self):
        """Removing a server from a loaded queue should blow the target,
        showing the solver's output is genuinely tight."""
        model = CapacityModel(
            streaming_rate=50_000.0, chunk_duration=300.0, vm_bandwidth=10e6 / 8
        )
        p = np.zeros((1, 1))
        lam = 0.5  # heavy single queue: offered load 6
        capacity = solve_channel_capacity(model, p, lam, alpha=1.0)
        m = int(capacity.servers[0])
        offered = lam / model.service_rate
        if m - 1 <= offered:
            pytest.skip("m-1 would be unstable; tightness trivially true")
        sim = JacksonChannelSimulator(
            p, lam, model.service_rate, np.array([m - 1]), alpha=1.0, seed=13
        )
        result = sim.run(horizon=200_000.0, warmup=20_000.0)
        assert result.mean_sojourn[0] > 300.0


class TestOwnershipAgainstProposition1:
    def test_owner_counts_match_analysis(self):
        p = uniform_jump_matrix(3, 0.5, 0.2)
        lam = 0.05
        sim = JacksonChannelSimulator(
            p, lam, MU, np.full(3, 50), alpha=0.8, seed=17
        )
        result = sim.run(horizon=400_000.0, warmup=40_000.0)
        ownership = solve_ownership(p, result.mean_in_system)
        # Compare measured time-average owners with Proposition 1 applied
        # to the measured populations.
        for i in range(3):
            if ownership.owners[i] > 0.05:
                assert result.mean_owners[i] == pytest.approx(
                    ownership.owners[i], rel=0.15
                )

    def test_sequential_chain_owner_ordering(self):
        """In sequential viewing, earlier chunks have more owners."""
        p = sequential_matrix(4, continue_prob=0.9)
        sim = JacksonChannelSimulator(
            p, 0.05, MU, np.full(4, 50), alpha=1.0, seed=19
        )
        result = sim.run(horizon=300_000.0, warmup=30_000.0)
        owners = result.mean_owners
        assert owners[0] > owners[1] > owners[2] > owners[3]
