"""Tests for repro.vod.delivery and repro.vod.overlay."""

import numpy as np
import pytest

from repro.sim.rng import make_rng
from repro.vod.delivery import ClientServerDelivery, P2PDelivery
from repro.vod.overlay import MeshOverlay
from repro.vod.user import UserStore

R = 10e6 / 8.0


def store_with(downloads, owners=(), uploads=100_000.0, num_chunks=4):
    """Build a store: ``downloads`` is a list of chunk indices (one per
    user); ``owners`` is a list of (user_index, owned_chunk) pairs."""
    store = UserStore(num_chunks)
    ids = [store.add_user(0.0, c, uploads) for c in downloads]
    for user_index, chunk in owners:
        store.grant_chunks(ids[user_index], chunk)
    return store, ids


class TestClientServer:
    def test_equal_share(self):
        store, _ = store_with([0, 0])
        delivery = ClientServerDelivery(user_cap=R)
        capacity = np.array([1.0e6, 0.0, 0.0, 0.0])
        outcome = delivery.allocate(store, capacity)
        assert outcome.per_user_rates[0] == pytest.approx(0.5e6)
        assert outcome.cloud_used == pytest.approx(1.0e6)
        assert outcome.peer_used == 0.0

    def test_user_cap_binds(self):
        store, _ = store_with([0])
        delivery = ClientServerDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([10 * R, 0, 0, 0]))
        assert outcome.per_user_rates[0] == pytest.approx(R)
        assert outcome.cloud_used == pytest.approx(R)

    def test_shortfall_measured(self):
        store, _ = store_with([0, 0])
        delivery = ClientServerDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([R, 0, 0, 0]))
        assert outcome.cloud_shortfall == pytest.approx(R)

    def test_idle_chunks_unused(self):
        store, _ = store_with([1])
        delivery = ClientServerDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([R, R, R, R]))
        assert outcome.cloud_used == pytest.approx(R)

    def test_capacity_shape_checked(self):
        store, _ = store_with([0])
        with pytest.raises(ValueError):
            ClientServerDelivery(R).allocate(store, np.zeros(3))


class TestP2P:
    def test_peers_serve_before_cloud(self):
        # User 1 owns chunk 0 and has plenty of upload; user 0 downloads it.
        store, ids = store_with([0, 1], owners=[(1, 0)], uploads=R)
        delivery = P2PDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([R, R, 0, 0]))
        # Chunk 0's downloader is served by the peer, not the cloud.
        assert outcome.peer_used >= R - 1e-6
        # Cloud only serves chunk 1's downloader (nobody owns chunk 1).
        assert outcome.cloud_used == pytest.approx(R)

    def test_no_owners_falls_back_to_cloud(self):
        store, _ = store_with([0])
        delivery = P2PDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([R, 0, 0, 0]))
        assert outcome.peer_used == 0.0
        assert outcome.cloud_used == pytest.approx(R)

    def test_peer_upload_is_shared_across_chunks(self):
        # One owner of both chunks with limited upload; two downloaders.
        store, ids = store_with(
            [0, 1, 2], owners=[(2, 0), (2, 1)], uploads=0.0
        )
        store.upload[ids[2]] = 100_000.0  # the only uploader
        delivery = P2PDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.zeros(4))
        # Peer can give at most its upload capacity in total.
        assert outcome.peer_used <= 100_000.0 + 1e-6

    def test_rarest_chunk_served_first(self):
        # Chunk 0 has one owner, chunk 1 has two owners; the single
        # uploader's capacity must go to chunk 0 first.
        store = UserStore(4)
        d0 = store.add_user(0.0, 0, 0.0)  # downloads rare chunk 0
        d1 = store.add_user(0.0, 1, 0.0)  # downloads chunk 1
        up = store.add_user(0.0, 2, 50_000.0)  # owns both
        o2 = store.add_user(0.0, 3, 0.0)  # extra owner of chunk 1 (no upload)
        store.grant_chunks(up, [0, 1])
        store.grant_chunks(o2, 1)
        delivery = P2PDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.zeros(4))
        # All 50 KB/s go to chunk 0 (rarest: 1 owner vs 2).
        assert outcome.per_user_rates[0] == pytest.approx(50_000.0)
        assert outcome.per_user_rates[1] == pytest.approx(0.0)

    def test_cloud_tops_up_shortfall(self):
        store, ids = store_with([0], owners=[], uploads=0.0)
        # Give one owner with tiny upload.
        owner = store.add_user(0.0, 1, 10_000.0)
        store.grant_chunks(owner, 0)
        delivery = P2PDelivery(user_cap=R)
        outcome = delivery.allocate(store, np.array([R, 0, 0, 0]))
        assert outcome.peer_used == pytest.approx(10_000.0)
        assert outcome.cloud_used == pytest.approx(R - 10_000.0)

    def test_empty_store(self):
        store = UserStore(4)
        outcome = P2PDelivery(R).allocate(store, np.zeros(4))
        assert outcome.cloud_used == 0.0
        assert outcome.peer_used == 0.0


class TestOverlay:
    def test_join_connects_to_candidates(self):
        overlay = MeshOverlay(max_degree=3, rng=make_rng(0, "ov"))
        overlay.join(0)
        overlay.join(1, [0])
        assert overlay.degree(1) == 1
        assert 1 in overlay.neighbors[0]

    def test_degree_soft_bound(self):
        """Peers respect max_degree when choosing, but a saturated peer may
        accept one extra edge rather than partition a newcomer (soft cap)."""
        overlay = MeshOverlay(max_degree=2, rng=make_rng(1, "ov"))
        overlay.join(0)
        for peer in range(1, 8):
            overlay.join(peer, list(range(peer)))
        # Every joiner got connected despite saturation...
        assert all(overlay.degree(p) >= 1 for p in range(1, 8))
        # ...and nobody's degree runs away.
        assert max(overlay.degree(p) for p in overlay.neighbors) <= 2 * overlay.max_degree + 2

    def test_leave_removes_edges(self):
        overlay = MeshOverlay(max_degree=4, rng=make_rng(2, "ov"))
        overlay.join(0)
        overlay.join(1, [0])
        overlay.leave(0)
        assert 0 not in overlay
        assert overlay.degree(1) == 0

    def test_leave_unknown_is_noop(self):
        overlay = MeshOverlay()
        overlay.leave(42)

    def test_duplicate_join_rejected(self):
        overlay = MeshOverlay()
        overlay.join(0)
        with pytest.raises(ValueError):
            overlay.join(0)

    def test_rewire_tops_up(self):
        overlay = MeshOverlay(max_degree=3, rng=make_rng(3, "ov"))
        for p in range(5):
            overlay.join(p, list(range(p)))
        victim = 4
        for nbr in list(overlay.neighbors[victim]):
            overlay.neighbors[nbr].discard(victim)
            overlay.neighbors[victim].discard(nbr)
        overlay.rewire(victim, [p for p in range(4)])
        assert overlay.degree(victim) >= 1

    def test_connected_components(self):
        overlay = MeshOverlay(max_degree=4, rng=make_rng(4, "ov"))
        overlay.join(0)
        overlay.join(1, [0])
        overlay.join(2)  # isolated
        components = overlay.connected_components()
        assert len(components) == 2
        assert not overlay.is_connected()

    def test_mesh_connectivity_with_enough_candidates(self):
        overlay = MeshOverlay(max_degree=4, rng=make_rng(5, "ov"))
        peers = list(range(30))
        for p in peers:
            overlay.join(p, peers[:p])
        assert overlay.is_connected()
        assert overlay.mean_degree() > 2.0
