"""Tests for the scenario registry (repro.experiments.registry)."""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import (
    PREDICTORS,
    ScenarioSpec,
    UnknownScenarioError,
    closed_loop_config,
    get,
    make_predictor,
    names,
    register,
    specs,
)

EXPECTED_SCENARIOS = {
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "ablation-predictors", "ablation-chunk-size", "flash-crowd", "geo",
}


class TestLookup:
    def test_all_expected_names_registered(self):
        assert EXPECTED_SCENARIOS <= set(names())

    def test_specs_sorted_and_complete(self):
        listed = [spec.name for spec in specs()]
        assert listed == sorted(listed)
        assert set(listed) == set(names())

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownScenarioError) as err:
            get("fig99")
        assert "fig99" in str(err.value)
        assert any(s.startswith("fig") for s in err.value.suggestions)

    def test_unknown_name_without_suggestions(self):
        with pytest.raises(UnknownScenarioError):
            get("zzzzzz-not-a-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(ScenarioSpec(name="fig04", title="dup", paper_ref="-"))

    def test_every_spec_documents_itself(self):
        for spec in specs():
            assert spec.title
            assert spec.paper_ref
            assert spec.build is not None or spec.run is not None


class TestGrid:
    def test_grid_points_cartesian_product(self):
        points = get("fig05").grid_points()
        modes = sorted(p["mode"] for p in points)
        assert modes == ["client-server", "p2p"]
        assert all(p["horizon_hours"] == 12.0 for p in points)

    def test_scalar_override_pins_axis(self):
        points = get("fig05").grid_points({"mode": "p2p"})
        assert [p["mode"] for p in points] == ["p2p"]

    def test_list_override_replaces_axis(self):
        points = get("fig11").grid_points({"upload_ratio": [0.5, 2.0]})
        assert sorted(p["upload_ratio"] for p in points) == [0.5, 2.0]

    def test_default_override_applies_to_every_point(self):
        points = get("fig05").grid_points({"horizon_hours": 3.0})
        assert len(points) == 2
        assert all(p["horizon_hours"] == 3.0 for p in points)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="no parameter"):
            get("fig05").grid_points({"bogus_knob": 1})

    def test_grid_values_json_serializable(self):
        for spec in specs():
            json.dumps({k: list(v) for k, v in spec.grid.items()})
            json.dumps(dict(spec.defaults))


class TestBuild:
    def test_closed_loop_config_modes(self):
        cs = get("fig04").config(mode="client-server")
        p2p = get("fig04").config(mode="p2p")
        assert isinstance(cs, ScenarioConfig)
        assert cs.mode == "client-server"
        assert p2p.mode == "p2p"

    def test_fig11_upload_ratio_maps_to_peer_upload(self):
        config = get("fig11").config(upload_ratio=1.2)
        assert config.peer_upload_mean == pytest.approx(1.2 * 50_000.0)

    def test_seed_threads_through(self):
        config = get("fig05").config(seed=7, mode="p2p")
        assert config.seed == 7

    def test_paper_scale(self):
        config = closed_loop_config(mode="p2p", scale="paper",
                                    horizon_hours=1.0)
        assert config.num_channels == 20

    def test_size_knobs_honoured_at_both_scales(self):
        small = closed_loop_config(scale="small", num_channels=8,
                                   target_population=500)
        paper = closed_loop_config(scale="paper", horizon_hours=1.0,
                                   num_channels=5, target_population=100)
        assert small.num_channels == 8
        assert small.target_population == 500
        assert paper.num_channels == 5
        assert paper.target_population == 100

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            closed_loop_config(scale="giant")

    def test_analytic_scenario_has_no_config(self):
        with pytest.raises(ValueError, match="analytic"):
            get("geo").config()


class TestRunCell:
    def test_chunk_size_cell_metrics(self):
        metrics = get("ablation-chunk-size").run_cell({"t0_minutes": 5.0})
        assert metrics["num_chunks"] == 20
        assert metrics["provisioned_mbps"] > 0
        json.dumps(metrics)

    def test_geo_cell_metrics(self):
        metrics = get("geo").run_cell({"hour_utc": 18.0})
        assert metrics["lp_objective"] >= metrics["objective"] - 1e-6
        assert 0.0 <= metrics["remote_fraction"] <= 1.0
        json.dumps(metrics)

    def test_closed_loop_cell_metrics(self):
        metrics = get("fig05").run_cell(
            {"mode": "p2p", "horizon_hours": 1.0}, seed=3
        )
        assert 0.0 <= metrics["average_quality"] <= 1.0
        assert metrics["arrivals"] > 0
        json.dumps(metrics)

    def test_analytic_cell_ignores_seed(self):
        spec = get("ablation-chunk-size")
        assert spec.run_cell({"t0_minutes": 5.0}, seed=1) == \
            spec.run_cell({"t0_minutes": 5.0}, seed=2)


class TestPredictors:
    def test_all_keys_instantiate(self):
        for key in PREDICTORS:
            predictor = make_predictor(key)
            predictor.observe(0, 1.0)
            assert predictor.predict(0) >= 0.0

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            make_predictor("oracle")
