"""Tests for the parallel sweep orchestrator (repro.experiments.sweep)."""

import json

import pytest

from repro.experiments.registry import UnknownScenarioError
from repro.experiments.sweep import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    SweepCell,
    SweepError,
    cell_hash,
    expand_cells,
    run_sweep,
    seed_list,
)

# A cheap closed-loop cell: one simulated hour, P2P mode.
FAST = {"mode": "p2p", "horizon_hours": 1.0}


class TestCellHash:
    def test_stable_across_param_order(self):
        a = cell_hash("fig05", {"mode": "p2p", "horizon_hours": 1.0}, 1)
        b = cell_hash("fig05", {"horizon_hours": 1.0, "mode": "p2p"}, 1)
        assert a == b

    def test_sensitive_to_every_component(self):
        base = cell_hash("fig05", FAST, 1)
        assert cell_hash("fig04", FAST, 1) != base
        assert cell_hash("fig05", FAST, 2) != base
        assert cell_hash("fig05", {**FAST, "mode": "client-server"}, 1) != base

    def test_rejects_unserializable_params(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            cell_hash("fig05", {"mode": object()}, 1)

    def test_numpy_scalars_hash_like_python(self):
        """Grids built with np.arange/np.linspace leak numpy scalars;
        they must produce the same cell hash (and thus hit the same
        cached artifacts) as the pure-Python grid."""
        import numpy as np

        python_grid = {"population": 240, "ratio": 1.5, "flag": True}
        numpy_grid = {
            "population": np.int64(240),
            "ratio": np.float32(1.5),
            "flag": np.bool_(True),
        }
        assert cell_hash("fig05", numpy_grid, 1) == \
            cell_hash("fig05", python_grid, 1)
        # np.float64 subclasses float and always worked; pin that too.
        assert cell_hash("fig05", {"ratio": np.float64(1.5)}, 1) == \
            cell_hash("fig05", {"ratio": 1.5}, 1)
        # And numpy seeds via a full round-trip through SweepCell.
        cell = SweepCell.make(
            "fig05", {"population": np.int64(240)}, np.int64(7)
        )
        assert cell.params == (("population", 240),)
        assert cell.hash == cell_hash("fig05", {"population": 240}, 7)

    def test_cell_make_canonicalizes(self):
        cell = SweepCell.make("fig05", {"b": 2, "a": 1}, 3)
        assert cell.params == (("a", 1), ("b", 2))
        assert cell.hash == cell_hash("fig05", {"a": 1, "b": 2}, 3)


class TestExpansion:
    def test_seed_list(self):
        assert seed_list(3) == [2011, 2012, 2013]
        assert seed_list(1, base=5) == [5]
        with pytest.raises(ValueError):
            seed_list(0)

    def test_expand_cells_grid_times_seeds(self):
        cells = expand_cells("fig05", seeds=[1, 2])
        assert len(cells) == 4  # two modes x two seeds
        assert len({c.hash for c in cells}) == 4

    def test_expand_unknown_scenario(self):
        with pytest.raises(UnknownScenarioError):
            expand_cells("nope", seeds=[1])


class TestArtifactStore:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cell = SweepCell.make("fig05", FAST, 1)
        path = store.save(cell, {"average_quality": 0.5}, 1.25)
        assert path == store.path(cell)
        payload = store.load(cell)
        assert payload["metrics"] == {"average_quality": 0.5}
        assert payload["schema"] == ARTIFACT_SCHEMA
        # Wall-clock lives in the sidecar, not the (deterministic)
        # artifact bytes.
        assert "duration_seconds" not in payload.get("meta", {})
        assert store.run_info(cell)["duration_seconds"] == 1.25

    def test_identity_mismatch_is_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cell = SweepCell.make("fig05", FAST, 1)
        path = store.save(cell, {"x": 1.0}, 0.0)
        payload = json.loads(path.read_text())
        payload["seed"] = 99  # tampered / colliding artifact
        path.write_text(json.dumps(payload))
        assert store.load(cell) is None

    def test_corrupt_artifact_is_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cell = SweepCell.make("fig05", FAST, 1)
        path = store.path(cell)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.load(cell) is None

    def test_missing_artifact_is_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load(SweepCell.make("fig05", FAST, 1)) is None


class TestRunSweep:
    def test_serial_sweep_writes_artifacts(self, tmp_path):
        report = run_sweep("fig05", jobs=1, seeds=[2011],
                           out_dir=tmp_path, overrides=FAST)
        assert report.total == 1 and report.ran == 1 and report.cached == 0
        [outcome] = report.outcomes
        assert outcome.path.is_file()
        payload = json.loads(outcome.path.read_text())
        assert payload["scenario"] == "fig05"
        assert payload["params"]["mode"] == "p2p"
        assert payload["metrics"] == outcome.metrics

    def test_second_run_hits_cache(self, tmp_path):
        first = run_sweep("fig05", jobs=1, seeds=[2011, 2012],
                          out_dir=tmp_path, overrides=FAST)
        second = run_sweep("fig05", jobs=1, seeds=[2011, 2012],
                           out_dir=tmp_path, overrides=FAST)
        assert first.ran == 2
        assert second.cached == 2 and second.ran == 0
        by_hash = {o.cell.hash: o.metrics for o in first.outcomes}
        for outcome in second.outcomes:
            assert outcome.metrics == by_hash[outcome.cell.hash]

    def test_adding_seeds_is_incremental(self, tmp_path):
        run_sweep("fig05", jobs=1, seeds=[2011], out_dir=tmp_path,
                  overrides=FAST)
        extended = run_sweep("fig05", jobs=1, seeds=[2011, 2012, 2013],
                             out_dir=tmp_path, overrides=FAST)
        assert extended.cached == 1
        assert extended.ran == 2

    def test_force_reruns_cached_cells(self, tmp_path):
        run_sweep("ablation-chunk-size", jobs=1, seeds=[2011],
                  out_dir=tmp_path, overrides={"t0_minutes": 5.0})
        forced = run_sweep("ablation-chunk-size", jobs=1, seeds=[2011],
                           out_dir=tmp_path, overrides={"t0_minutes": 5.0},
                           force=True)
        assert forced.ran == 1 and forced.cached == 0

    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        run_sweep("ablation-chunk-size", jobs=1, seeds=[2011],
                  out_dir=tmp_path, progress=seen.append)
        assert len(seen) == 5  # the five T0 grid values

    def test_parallel_two_process_determinism(self, tmp_path):
        """Same seeds => identical artifacts, regardless of worker count.

        Since artifact schema 3 this holds at the byte level: the files
        themselves must be identical, not just the parsed metrics."""
        parallel = run_sweep("fig05", jobs=2, seeds=[2011, 2012],
                             out_dir=tmp_path / "par", overrides=FAST)
        serial = run_sweep("fig05", jobs=1, seeds=[2011, 2012],
                           out_dir=tmp_path / "ser", overrides=FAST)
        assert parallel.ran == 2 and serial.ran == 2
        par = {o.cell.hash: o.path.read_bytes() for o in parallel.outcomes}
        ser = {o.cell.hash: o.path.read_bytes() for o in serial.outcomes}
        assert par == ser

    def test_failing_cell_saves_completed_cells(self, tmp_path):
        """A bad cell raises SweepError *after* good cells are saved."""
        with pytest.raises(SweepError, match="1 sweep cell"):
            run_sweep("fig05", jobs=1, seeds=[2011], out_dir=tmp_path,
                      overrides={**FAST, "mode": ["p2p", "bogus"]})
        rerun = run_sweep("fig05", jobs=1, seeds=[2011], out_dir=tmp_path,
                          overrides=FAST)
        assert rerun.cached == 1 and rerun.ran == 0

    def test_failing_cell_parallel_saves_completed_cells(self, tmp_path):
        with pytest.raises(SweepError):
            run_sweep("fig05", jobs=2, seeds=[2011], out_dir=tmp_path,
                      overrides={**FAST, "mode": ["p2p", "bogus"]})
        rerun = run_sweep("fig05", jobs=1, seeds=[2011], out_dir=tmp_path,
                          overrides=FAST)
        assert rerun.cached == 1 and rerun.ran == 0

    def test_report_metric_names(self, tmp_path):
        report = run_sweep("ablation-chunk-size", jobs=1, seeds=[2011],
                           out_dir=tmp_path,
                           overrides={"t0_minutes": [1.0, 5.0]})
        assert "provisioned_mbps" in report.metric_names()
        assert report.total == 2
