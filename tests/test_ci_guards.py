"""Tests for the CI gate helpers: the perf-regression check, the
re-recordable golden fixtures, and the tracker's shard-merge absorb."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.vod.tracker import TrackingServer

REPO = Path(__file__).resolve().parent.parent


def _load_script(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPerfCheck:
    def _blocks(self, committed, measured):
        def wrap(values):
            return {
                "kernels": {
                    label: {"steps_per_sec": value}
                    for label, value in values.items()
                }
            }

        return wrap(committed), wrap(measured)

    def test_flags_regressions_beyond_threshold(self):
        perf_smoke = _load_script("perf_smoke")
        committed, measured = self._blocks(
            {"fig04": 1000.0, "catalog": 10.0},
            {"fig04": 650.0, "catalog": 9.5},
        )
        failures = perf_smoke.check_regressions(committed, measured, 0.30)
        assert [f[0] for f in failures] == ["fig04"]

    def test_within_threshold_passes(self):
        perf_smoke = _load_script("perf_smoke")
        committed, measured = self._blocks(
            {"fig04": 1000.0}, {"fig04": 750.0}
        )
        assert perf_smoke.check_regressions(committed, measured, 0.30) == []

    def test_new_kernels_do_not_fail_retroactively(self):
        perf_smoke = _load_script("perf_smoke")
        committed, measured = self._blocks({}, {"catalog": 5.0})
        assert perf_smoke.check_regressions(committed, measured, 0.30) == []
        assert perf_smoke.check_regressions(None, measured, 0.30) == []

    def test_skip_catalog_preserves_committed_reference(self, tmp_path):
        """A quick --skip-catalog run must carry the committed catalog
        entry forward instead of silently erasing the gate reference."""
        perf_smoke = _load_script("perf_smoke")
        out = tmp_path / "bench.json"
        reference = {"steps_per_sec": 12.0, "jobs": 4}
        out.write_text(json.dumps({
            "schema": perf_smoke.BENCH_SCHEMA,
            "baseline": {"kernels": {}},
            "current": {"kernels": {"catalog": dict(reference)}},
            "speedup": {},
        }))
        assert perf_smoke.main([
            "--steps", "2", "--warmup-scale", "0.001",
            "--skip-catalog", "--out", str(out),
        ]) == 0
        kernels = json.loads(out.read_text())["current"]["kernels"]
        assert kernels["catalog"]["steps_per_sec"] == 12.0
        assert kernels["catalog"]["carried_forward"] is True
        assert "fig04" in kernels  # the quick run still measured the rest


class TestGoldenRecorder:
    def test_records_into_custom_dir_matching_committed(self, tmp_path):
        """`record_golden --out DIR` is what CI diffs against the
        committed fixtures — the smallest one must round-trip equal."""
        record_golden = _load_script("record_golden")
        payload = record_golden.kernel_trajectory("client-server")
        committed = json.loads(
            (REPO / "tests" / "golden" / "kernel_client_server.json")
            .read_text()
        )
        assert payload["arrivals"] == committed["arrivals"]
        assert payload["cloud_used"] == committed["cloud_used"]


class TestTrackerAbsorb:
    def test_absorb_sums_counts(self):
        source = TrackingServer(2, [3, 3], interval_seconds=600.0)
        source.record_arrival(1, 0, 100.0)
        source.record_arrival(1, 2, 50.0)
        source.record_transition(1, 0, 1)
        source.record_departure(1, 2)

        target = TrackingServer(2, [3, 3], interval_seconds=600.0)
        target.record_arrival(1, 0, 10.0)
        for stats in source.close_interval():
            target.absorb(stats)
        merged = target.close_interval()[1]
        assert merged.arrivals == 3
        assert merged.upload_capacity_sum == pytest.approx(160.0)
        assert merged.transition_counts[0, 1] == 1.0
        assert merged.departure_counts[2] == 1.0
        assert merged.start_chunk_counts.tolist() == [2.0, 0.0, 1.0]

    def test_absorb_rejects_shape_mismatch(self):
        source = TrackingServer(1, [4], interval_seconds=600.0)
        target = TrackingServer(1, [3], interval_seconds=600.0)
        with pytest.raises(ValueError, match="shape"):
            target.absorb(source.close_interval()[0])
