"""Tests for repro.core.provisioner: the hourly control loop."""

import numpy as np
import pytest

from repro.cloud.broker import Broker
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.scheduler import CloudFacility
from repro.core.demand import DemandEstimator
from repro.core.predictor import EWMAPredictor
from repro.core.provisioner import ProvisioningController
from repro.core.sla import SLATerms
from repro.queueing.capacity import CapacityModel
from repro.vod.tracker import TrackingServer

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0
CHUNK = r * T0


def make_facility():
    vm = [
        VirtualClusterSpec("standard", 0.6, 0.45, 30, R),
        VirtualClusterSpec("advanced", 1.0, 0.80, 15, R),
    ]
    nfs = [
        NFSClusterSpec("standard", 0.8, 1.11e-4, 5 * 1024**3),
        NFSClusterSpec("high", 1.0, 2.08e-4, 5 * 1024**3),
    ]
    return CloudFacility(vm, nfs)


def make_controller(mode="client-server", **kwargs):
    model = CapacityModel(streaming_rate=r, chunk_duration=T0, vm_bandwidth=R)
    tracker = TrackingServer(2, [4, 4], interval_seconds=3600.0)
    facility = make_facility()
    broker = Broker(facility)
    estimator = DemandEstimator(model, mode)
    controller = ProvisioningController(
        estimator, tracker, broker, SLATerms(vm_budget_per_hour=40.0), **kwargs
    )
    return controller, tracker, facility


def feed_interval(tracker, channel=0, arrivals=360, upload=2 * r):
    for _ in range(arrivals):
        tracker.record_arrival(channel, 0, upload)
    for _ in range(50):
        tracker.record_transition(channel, 0, 1)
        tracker.record_departure(channel, 1)


class TestBootstrap:
    def test_bootstrap_provisions_vms(self):
        controller, _, facility = make_controller()
        decision = controller.bootstrap(0.0, {0: 0.1, 1: 0.05})
        assert decision.agreement is not None
        assert facility.total_active_vms() > 0
        assert decision.storage_plan is not None
        assert decision.storage_plan.feasible
        # Per-channel capacities published for both channels.
        assert set(decision.per_channel_capacity) == {0, 1}
        assert decision.per_channel_capacity[0].shape == (4,)

    def test_bootstrap_places_all_chunks(self):
        controller, _, facility = make_controller()
        controller.bootstrap(0.0, {0: 0.1, 1: 0.05})
        stored = facility.nfs_scheduler.stored_bytes()
        assert sum(stored.values()) == pytest.approx(8 * CHUNK)


class TestRunInterval:
    def test_interval_uses_tracker_stats(self):
        controller, tracker, facility = make_controller()
        feed_interval(tracker, arrivals=360)
        decision = controller.run_interval(3600.0)
        assert decision.total_cloud_demand > 0
        assert facility.total_active_vms() > 0
        # Idle channel 1 got zero capacity.
        assert decision.per_channel_capacity[1].sum() == 0.0

    def test_scale_down_after_demand_drop(self):
        controller, tracker, facility = make_controller()
        feed_interval(tracker, arrivals=3600)
        controller.run_interval(3600.0)
        high = facility.total_active_vms()
        # Next interval: almost nobody arrives.
        feed_interval(tracker, arrivals=4)
        controller.run_interval(7200.0)
        low = facility.total_active_vms()
        assert low < high

    def test_predictor_feeds_forward(self):
        controller, tracker, _ = make_controller(
            predictor=EWMAPredictor(beta=0.5)
        )
        feed_interval(tracker, arrivals=3600)
        controller.run_interval(3600.0)
        feed_interval(tracker, arrivals=0)
        decision = controller.run_interval(7200.0)
        # EWMA: predicted rate = 0.5*0 + 0.5*1.0 = 0.5 -> still provisioning.
        assert decision.demands[0].arrival_rate == pytest.approx(0.5)

    def test_ledger_records_every_interval(self):
        controller, tracker, _ = make_controller()
        feed_interval(tracker)
        controller.run_interval(3600.0)
        feed_interval(tracker)
        controller.run_interval(7200.0)
        assert controller.ledger.intervals == 2
        assert controller.ledger.vm_budget_violations() == 0

    def test_budget_respected(self):
        controller, tracker, _ = make_controller()
        # A flood of arrivals that would exceed the $40/h budget.
        feed_interval(tracker, arrivals=80_000)
        decision = controller.run_interval(3600.0)
        assert decision.hourly_vm_cost <= 40.0 + 1e-9

    def test_min_capacity_floor(self):
        controller, tracker, _ = make_controller(min_capacity_per_chunk=r)
        feed_interval(tracker, arrivals=40)
        decision = controller.run_interval(3600.0)
        cap = decision.per_channel_capacity[0]
        populated = decision.demands[0].expected_in_system > 0
        assert np.all(cap[populated] >= r - 1e-9)


class TestStorageReplanning:
    def test_storage_not_replanned_on_stable_demand(self):
        controller, tracker, _ = make_controller(storage_replan_threshold=0.5)
        feed_interval(tracker, arrivals=360)
        first = controller.run_interval(3600.0)
        assert first.storage_plan is not None  # first plan always happens
        feed_interval(tracker, arrivals=360)
        second = controller.run_interval(7200.0)
        assert second.storage_plan is None

    def test_storage_replanned_on_large_shift(self):
        controller, tracker, _ = make_controller(storage_replan_threshold=0.25)
        feed_interval(tracker, channel=0, arrivals=360)
        controller.run_interval(3600.0)
        # Demand moves to channel 1.
        feed_interval(tracker, channel=1, arrivals=3600)
        decision = controller.run_interval(7200.0)
        assert decision.storage_plan is not None


class TestP2PControl:
    def test_p2p_cheaper_than_client_server(self):
        cs, cs_tracker, _ = make_controller("client-server")
        p2p, p2p_tracker, _ = make_controller("p2p")
        for tracker in (cs_tracker, p2p_tracker):
            feed_interval(tracker, arrivals=1800, upload=2 * r)
        cs_decision = cs.run_interval(3600.0)
        p2p_decision = p2p.run_interval(3600.0, peer_upload=2 * r)
        assert p2p_decision.hourly_vm_cost < cs_decision.hourly_vm_cost

    def test_decision_utilities(self):
        controller, tracker, _ = make_controller()
        feed_interval(tracker)
        decision = controller.run_interval(3600.0)
        total = decision.aggregate_vm_utility()
        ch0 = decision.aggregate_vm_utility(0)
        ch1 = decision.aggregate_vm_utility(1)
        assert total == pytest.approx(ch0 + ch1)
        assert decision.aggregate_storage_utility(0) >= 0.0
