"""Tests for repro.queueing.erlang: M/M/m stationary quantities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.erlang import (
    MMmQueueStats,
    erlang_b,
    erlang_c,
    mmm_expected_number_in_system,
    mmm_expected_queue_length,
    mmm_expected_sojourn_time,
    mmm_stationary_distribution,
    mmm_stats,
)


def direct_erlang_b(m: int, a: float) -> float:
    """Textbook Erlang-B via explicit factorial sums (small m only)."""
    terms = [a**k / math.factorial(k) for k in range(m + 1)]
    return terms[-1] / sum(terms)


def direct_expected_in_system(m: int, a: float, kmax: int = 4000) -> float:
    """E[n] by direct summation of the paper's Eqn (2)/(3) series."""
    p0_terms = sum(a**k / math.factorial(k) for k in range(m))
    w = a / m
    p0 = 1.0 / (p0_terms + a**m / (math.factorial(m) * (1 - w)))
    total = 0.0
    for k in range(1, kmax):
        if k <= m:
            pk = p0 * a**k / math.factorial(k)
        else:
            pk = p0 * a**m / math.factorial(m) * w ** (k - m)
        total += k * pk
    return total


class TestErlangB:
    def test_zero_load(self):
        assert erlang_b(5, 0.0) == pytest.approx(0.0)

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(0, 2.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("m,a", [(1, 0.5), (2, 1.5), (5, 3.0), (10, 9.0)])
    def test_matches_direct_formula(self, m, a):
        assert erlang_b(m, a) == pytest.approx(direct_erlang_b(m, a), rel=1e-12)

    def test_monotone_decreasing_in_servers(self):
        values = [erlang_b(m, 4.0) for m in range(1, 15)]
        assert all(x > y for x, y in zip(values, values[1:]))

    def test_monotone_increasing_in_load(self):
        values = [erlang_b(4, a) for a in (0.5, 1.0, 2.0, 3.5, 6.0)]
        assert all(x < y for x, y in zip(values, values[1:]))

    def test_large_load_no_overflow(self):
        # Factorial formulas overflow here; the recursion must not.
        value = erlang_b(500, 480.0)
        assert 0.0 < value < 1.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(3, -1.0)

    def test_negative_servers_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.3) == pytest.approx(0.3)

    def test_zero_load(self):
        assert erlang_c(3, 0.0) == pytest.approx(0.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.0)

    def test_c_at_least_b(self):
        for m, a in [(2, 1.0), (5, 4.0), (20, 15.0)]:
            assert erlang_c(m, a) >= erlang_b(m, a)

    def test_saturated_opt_in_returns_one(self):
        """Capacity probes mid-flash-crowd can legitimately hit a >= m;
        the opt-in returns the limiting wait probability instead of
        raising."""
        assert erlang_c(2, 2.0, saturated=True) == 1.0
        assert erlang_c(3, 7.5, saturated=True) == 1.0
        # Below saturation the opt-in changes nothing.
        assert erlang_c(4, 2.0, saturated=True) == erlang_c(4, 2.0)

    def test_saturated_is_the_continuous_limit(self):
        """C(m, a) -> 1 as a -> m from below, so returning 1.0 at the
        boundary is the continuous extension, not an arbitrary value."""
        for m in (1, 3, 10):
            assert erlang_c(m, m * (1.0 - 1e-9)) == pytest.approx(1.0)
            assert erlang_c(m, float(m), saturated=True) == 1.0

    def test_matches_direct_summation(self):
        """Cross-check the recursion against the textbook closed form
        C = (a^m / m!) * (m / (m - a)) * p0 for small queues."""
        for m, a in [(1, 0.4), (2, 1.3), (5, 3.7), (8, 6.0)]:
            p0 = 1.0 / (
                sum(a**k / math.factorial(k) for k in range(m))
                + a**m / (math.factorial(m) * (1.0 - a / m))
            )
            direct = a**m / math.factorial(m) * (m / (m - a)) * p0
            assert erlang_c(m, a) == pytest.approx(direct, rel=1e-12)
            assert erlang_c(m, a, saturated=True) == pytest.approx(
                direct, rel=1e-12
            )

    @given(
        m=st.integers(min_value=1, max_value=60),
        frac=st.floats(min_value=0.01, max_value=0.98),
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_range(self, m, frac):
        a = m * frac
        c = erlang_c(m, a)
        assert 0.0 <= c <= 1.0


class TestStationaryDistribution:
    def test_sums_to_one_with_long_tail(self):
        probs = mmm_stationary_distribution(3, 2.0, max_k=300)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_paper_eqn2(self):
        m, a = 4, 2.5
        probs = mmm_stationary_distribution(m, a, max_k=10)
        p0_terms = sum(a**k / math.factorial(k) for k in range(m))
        p0 = 1.0 / (p0_terms + a**m / (math.factorial(m) * (1 - a / m)))
        for k in range(11):
            if k <= m:
                expected = p0 * a**k / math.factorial(k)
            else:
                expected = p0 * a**m / math.factorial(m) * (a / m) ** (k - m)
            assert probs[k] == pytest.approx(expected, rel=1e-10)

    def test_nonnegative(self):
        probs = mmm_stationary_distribution(2, 1.9, max_k=100)
        assert np.all(probs >= 0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mmm_stationary_distribution(2, 2.5, max_k=5)


class TestExpectedValues:
    @pytest.mark.parametrize("m,a", [(1, 0.5), (2, 1.2), (5, 4.2), (8, 6.0)])
    def test_expected_in_system_matches_series(self, m, a):
        closed = mmm_expected_number_in_system(m, a)
        series = direct_expected_in_system(m, a)
        assert closed == pytest.approx(series, rel=1e-6)

    def test_mm1_closed_form(self):
        # M/M/1: L = rho / (1 - rho).
        rho = 0.6
        assert mmm_expected_number_in_system(1, rho) == pytest.approx(
            rho / (1 - rho)
        )

    def test_queue_length_zero_at_zero_load(self):
        assert mmm_expected_queue_length(5, 0.0) == 0.0

    def test_in_system_at_least_offered_load(self):
        for m, a in [(2, 1.5), (10, 8.0)]:
            assert mmm_expected_number_in_system(m, a) >= a

    def test_monotone_decreasing_in_servers(self):
        a = 5.0
        values = [mmm_expected_number_in_system(m, a) for m in range(6, 20)]
        assert all(x >= y - 1e-12 for x, y in zip(values, values[1:]))

    def test_sojourn_littles_law(self):
        lam, mu, m = 2.0, 0.5, 6
        ls = mmm_expected_number_in_system(m, lam / mu)
        assert mmm_expected_sojourn_time(m, lam, mu) == pytest.approx(ls / lam)

    def test_sojourn_zero_arrivals_is_service_time(self):
        assert mmm_expected_sojourn_time(3, 0.0, 0.25) == pytest.approx(4.0)

    @given(
        m=st.integers(min_value=1, max_value=40),
        frac=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_sojourn_at_least_service_time(self, m, frac):
        mu = 0.2
        lam = m * frac * mu
        assert mmm_expected_sojourn_time(m, lam, mu) >= 1.0 / mu - 1e-9


class TestStats:
    def test_consistency(self):
        stats = mmm_stats(4, 1.5, 0.5)
        assert isinstance(stats, MMmQueueStats)
        assert stats.offered_load == pytest.approx(3.0)
        assert stats.utilization == pytest.approx(0.75)
        assert stats.expected_in_system == pytest.approx(
            stats.expected_waiting + stats.offered_load
        )
        assert stats.expected_sojourn_time == pytest.approx(
            stats.expected_wait_time + 2.0
        )

    def test_idle_queue(self):
        stats = mmm_stats(4, 0.0, 0.5)
        assert stats.expected_in_system == 0.0
        assert stats.wait_probability == 0.0
        assert stats.expected_sojourn_time == pytest.approx(2.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mmm_stats(2, 3.0, 1.0)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            mmm_stats(2, -1.0, 1.0)
        with pytest.raises(ValueError):
            mmm_stats(2, 1.0, 0.0)
