"""Tests for the geo-distributed extension (repro.geo)."""

import numpy as np
import pytest

from repro.cloud.cluster import VirtualClusterSpec
from repro.geo.allocation import (
    GeoVMProblem,
    greedy_geo_allocation,
    lp_geo_allocation,
)
from repro.geo.region import GeoTopology, RegionSpec

R = 10e6 / 8.0


def cluster(name, utility=0.6, price=0.45, max_vms=20):
    return VirtualClusterSpec(name, utility, price, max_vms, R)


def two_region_topology(
    east_vms=20, west_vms=20, latency=80.0, egress=0.02, halflife=150.0
):
    east = RegionSpec("east", (cluster("std", max_vms=east_vms),))
    west = RegionSpec("west", (cluster("std", max_vms=west_vms),))
    return GeoTopology(
        [east, west],
        latency_ms={("east", "west"): latency},
        egress_price_per_gb={("east", "west"): egress},
        latency_halflife_ms=halflife,
    )


class TestTopology:
    def test_symmetric_fill(self):
        topo = two_region_topology()
        assert topo.latency("east", "west") == topo.latency("west", "east")
        assert topo.egress_price("west", "east") == 0.02

    def test_local_defaults(self):
        topo = two_region_topology()
        assert topo.latency("east", "east") == 5.0
        assert topo.egress_price("east", "east") == 0.0

    def test_utility_discount(self):
        topo = two_region_topology(latency=150.0, halflife=150.0)
        assert topo.utility_discount("east", "west") == pytest.approx(0.5)
        assert topo.utility_discount("east", "east") > 0.9

    def test_egress_cost_per_vm_hour(self):
        topo = two_region_topology(egress=0.02)
        # 10 Mbps for an hour = 4.5 GB; at $0.02/GB -> $0.09.
        cost = topo.egress_cost_per_vm_hour("east", "west", R)
        assert cost == pytest.approx(0.02 * R * 3600 / 1e9)

    def test_missing_latency_rejected(self):
        east = RegionSpec("east", (cluster("std"),))
        west = RegionSpec("west", (cluster("std"),))
        with pytest.raises(ValueError, match="latency"):
            GeoTopology([east, west], {}, {("east", "west"): 0.01})

    def test_unknown_region_rejected(self):
        topo = two_region_topology()
        with pytest.raises(KeyError):
            topo.latency("east", "mars")

    def test_duplicate_regions_rejected(self):
        east = RegionSpec("east", (cluster("std"),))
        with pytest.raises(ValueError):
            GeoTopology([east, east], {}, {})

    def test_asymmetric_overrides_both_honored(self):
        """Explicit (a, b) and (b, a) entries are both kept verbatim —
        neither direction silently mirrors the other."""
        east = RegionSpec("east", (cluster("std"),))
        west = RegionSpec("west", (cluster("std"),))
        topo = GeoTopology(
            [east, west],
            latency_ms={("east", "west"): 80.0, ("west", "east"): 120.0},
            egress_price_per_gb={
                ("east", "west"): 0.02, ("west", "east"): 0.07,
            },
        )
        assert topo.latency("east", "west") == 80.0
        assert topo.latency("west", "east") == 120.0
        assert topo.egress_price("east", "west") == 0.02
        assert topo.egress_price("west", "east") == 0.07

    def test_diagonal_latency_override_rejected(self):
        """An explicit (a, a) latency conflicting with local_latency_ms
        must not silently win."""
        east = RegionSpec("east", (cluster("std"),))
        west = RegionSpec("west", (cluster("std"),))
        with pytest.raises(ValueError, match="local_latency_ms"):
            GeoTopology(
                [east, west],
                latency_ms={("east", "west"): 80.0, ("east", "east"): 50.0},
                egress_price_per_gb={("east", "west"): 0.02},
            )
        # A diagonal entry that *matches* the default is tolerated.
        topo = GeoTopology(
            [east, west],
            latency_ms={("east", "west"): 80.0, ("east", "east"): 5.0},
            egress_price_per_gb={("east", "west"): 0.02},
        )
        assert topo.latency("east", "east") == 5.0

    def test_diagonal_egress_override_rejected(self):
        """Intra-region traffic is free by contract; a nonzero (a, a)
        egress price contradicts it."""
        east = RegionSpec("east", (cluster("std"),))
        west = RegionSpec("west", (cluster("std"),))
        with pytest.raises(ValueError, match="free-intra-region"):
            GeoTopology(
                [east, west],
                latency_ms={("east", "west"): 80.0},
                egress_price_per_gb={
                    ("east", "west"): 0.02, ("west", "west"): 0.01,
                },
            )
        topo = GeoTopology(
            [east, west],
            latency_ms={("east", "west"): 80.0},
            egress_price_per_gb={
                ("east", "west"): 0.02, ("west", "west"): 0.0,
            },
        )
        assert topo.egress_price("west", "west") == 0.0


class TestGreedyGeo:
    def test_local_serving_preferred(self):
        """With capacity at home, demand stays in-region (local utility is
        undiscounted and egress-free)."""
        topo = two_region_topology()
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 5 * R}, "west": {("c", 1): 5 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        plan = greedy_geo_allocation(problem)
        assert plan.feasible
        assert plan.remote_fraction() == pytest.approx(0.0)

    def test_spillover_to_remote_region(self):
        """When the home region is full, demand spills across the link."""
        topo = two_region_topology(east_vms=3, west_vms=20)
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 8 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        plan = greedy_geo_allocation(problem)
        assert plan.feasible
        matrix = plan.region_service_matrix()
        assert matrix[("east", "east")] == pytest.approx(3.0)
        assert matrix[("east", "west")] == pytest.approx(5.0)
        assert plan.remote_fraction() == pytest.approx(5.0 / 8.0)

    def test_latency_discount_in_objective(self):
        topo = two_region_topology(east_vms=0, west_vms=10, latency=150.0)
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 4 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        plan = greedy_geo_allocation(problem)
        # All remote at half utility: 4 VMs * 0.6 * 0.5.
        assert plan.objective == pytest.approx(4 * 0.6 * 0.5)

    def test_egress_priced_into_cost(self):
        topo = two_region_topology(east_vms=0, west_vms=10, egress=0.02)
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 2 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        plan = greedy_geo_allocation(problem)
        egress = topo.egress_cost_per_vm_hour("west", "east", R)
        assert plan.cost_per_hour == pytest.approx(2 * (0.45 + egress))

    def test_budget_exhaustion_reported(self):
        topo = two_region_topology()
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 10 * R}},
            vm_bandwidth=R,
            budget_per_hour=1.0,
        )
        plan = greedy_geo_allocation(problem)
        assert not plan.feasible
        assert plan.unserved_vms > 0
        assert plan.cost_per_hour <= 1.0 + 1e-9

    def test_capacity_exhaustion_reported(self):
        topo = two_region_topology(east_vms=2, west_vms=2)
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 10 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        plan = greedy_geo_allocation(problem)
        assert not plan.feasible
        assert plan.unserved_vms == pytest.approx(6.0)


class TestLPGeo:
    def test_lp_dominates_greedy(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            topo = two_region_topology(
                east_vms=int(rng.integers(2, 10)),
                west_vms=int(rng.integers(2, 10)),
                latency=float(rng.uniform(20, 200)),
                egress=float(rng.uniform(0.0, 0.05)),
            )
            demands = {
                "east": {("c", i): float(rng.uniform(0, 3)) * R for i in range(3)},
                "west": {("d", i): float(rng.uniform(0, 3)) * R for i in range(3)},
            }
            problem = GeoVMProblem(
                topology=topo, demands=demands, vm_bandwidth=R,
                budget_per_hour=50.0,
            )
            greedy = greedy_geo_allocation(problem)
            lp = lp_geo_allocation(problem)
            if greedy.feasible and lp.feasible:
                assert lp.objective >= greedy.objective - 1e-6

    def test_lp_matches_greedy_on_local_case(self):
        topo = two_region_topology()
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 4 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        greedy = greedy_geo_allocation(problem)
        lp = lp_geo_allocation(problem)
        assert lp.objective == pytest.approx(greedy.objective)

    def test_lp_infeasible_reported(self):
        topo = two_region_topology(east_vms=1, west_vms=1)
        problem = GeoVMProblem(
            topology=topo,
            demands={"east": {("c", 0): 10 * R}},
            vm_bandwidth=R,
            budget_per_hour=100.0,
        )
        lp = lp_geo_allocation(problem)
        assert not lp.feasible

    def test_empty_problem(self):
        topo = two_region_topology()
        problem = GeoVMProblem(
            topology=topo, demands={}, vm_bandwidth=R, budget_per_hour=1.0
        )
        assert lp_geo_allocation(problem).feasible
        assert greedy_geo_allocation(problem).feasible


class TestValidation:
    def test_negative_demand_rejected(self):
        topo = two_region_topology()
        with pytest.raises(ValueError):
            GeoVMProblem(
                topology=topo,
                demands={"east": {("c", 0): -1.0}},
                vm_bandwidth=R,
                budget_per_hour=1.0,
            )

    def test_unknown_demand_region_rejected(self):
        topo = two_region_topology()
        with pytest.raises(KeyError):
            GeoVMProblem(
                topology=topo,
                demands={"mars": {("c", 0): 1.0}},
                vm_bandwidth=R,
                budget_per_hour=1.0,
            )
