"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.chunks == 20
        assert args.mode == "client-server"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestAnalyze:
    def test_client_server_output(self, capsys):
        assert main(["analyze", "--chunks", "6", "--rate", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "capacity analysis" in out
        assert "total cloud demand" in out
        assert "expected population" in out

    def test_p2p_output(self, capsys):
        assert main(
            ["analyze", "--chunks", "6", "--rate", "0.05", "--mode", "p2p"]
        ) == 0
        out = capsys.readouterr().out
        assert "peer offload" in out

    def test_p2p_upload_ratio_changes_demand(self, capsys):
        main(["analyze", "--chunks", "6", "--rate", "0.1", "--mode", "p2p",
              "--peer-upload-ratio", "0.1"])
        low = capsys.readouterr().out
        main(["analyze", "--chunks", "6", "--rate", "0.1", "--mode", "p2p",
              "--peer-upload-ratio", "2.0"])
        high = capsys.readouterr().out

        def total(text):
            line = [ln for ln in text.splitlines() if "total cloud demand" in ln][0]
            return float(line.split(":")[1].split("Mbps")[0])

        assert total(high) <= total(low)


class TestTrace:
    def test_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(
            [
                "trace", str(out_path),
                "--channels", "3", "--chunks", "4",
                "--hours", "2", "--rate", "0.5", "--seed", "5",
            ]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["config"]["num_channels"] == 3
        assert payload["config"]["seed"] == 5
        assert len(payload["sessions"]) > 0
        assert "wrote" in capsys.readouterr().out


class TestRun:
    def test_small_run_summary(self, capsys):
        assert main(["run", "--mode", "p2p", "--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop run summary" in out
        assert "avg streaming quality" in out
        assert "VM cost ($/h)" in out


class TestInfo:
    def test_prints_tables(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "$100.0/h" in out
        assert "standard" in out and "advanced" in out and "high" in out


class TestScenarios:
    def test_lists_registered_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("fig04", "fig05", "fig11", "ablation-predictors",
                     "geo", "flash-crowd"):
            assert name in out

    def test_lists_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "fig05" for entry in payload)

    def test_describe_one(self, capsys):
        assert main(["scenarios", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "upload_ratio" in out
        assert "Fig. 11" in out

    def test_describe_json(self, capsys):
        assert main(["scenarios", "fig11", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["grid"]["upload_ratio"] == [0.9, 1.0, 1.2]
        assert payload["closed_loop"] is True

    def test_unknown_scenario_fails(self, capsys):
        assert main(["scenarios", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweep:
    def test_smoke_and_cache(self, tmp_path, capsys):
        args = ["sweep", "ablation-chunk-size", "--jobs", "1",
                "--seeds", "1", "--out", str(tmp_path),
                "--set", "t0_minutes=[5.0]"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 cells (1 ran, 0 cached)" in out
        artifacts = list((tmp_path / "ablation-chunk-size").glob("*.json"))
        assert len(artifacts) == 1

        assert main(args) == 0
        assert "1 cells (0 ran, 1 cached)" in capsys.readouterr().out

    def test_closed_loop_smoke(self, tmp_path, capsys):
        assert main(["sweep", "fig05", "--jobs", "1", "--seeds", "1",
                     "--out", str(tmp_path),
                     "--set", "mode=p2p", "--set", "horizon_hours=1.0"]) == 0
        out = capsys.readouterr().out
        assert "average_quality" in out
        payload = json.loads(
            next((tmp_path / "fig05").glob("*.json")).read_text()
        )
        assert payload["params"]["mode"] == "p2p"

    def test_unknown_scenario_fails(self, capsys):
        assert main(["sweep", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_set_parameter_fails(self, tmp_path, capsys):
        assert main(["sweep", "fig05", "--out", str(tmp_path),
                     "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_malformed_set_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "fig05", "--out", str(tmp_path), "--set", "oops"])


class TestCatalog:
    ARGS = ["catalog", "--channels", "6", "--chunks", "4", "--hours", "0.5",
            "--rate", "0.4", "--shards", "3", "--dt", "60"]

    def test_runs_and_prints_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "sharded catalog run" in out
        assert "peak population" in out
        assert "steps/s" in out

    def test_writes_metrics_json(self, tmp_path, capsys):
        out_path = tmp_path / "catalog.json"
        assert main(self.ARGS + ["--jobs", "2", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["metrics"]["arrivals"] > 0
        assert payload["metrics"]["num_shards"] == 3
        assert payload["jobs"] == 2

    def test_variant_presets_accepted(self, capsys):
        assert main(self.ARGS + ["--variant", "diurnal"]) == 0
        assert "catalog-diurnal" in capsys.readouterr().out

    def test_stream_prints_epoch_lines(self, capsys):
        assert main(self.ARGS + ["--stream"]) == 0
        out = capsys.readouterr().out
        assert "epoch   1/" in out
        assert "sharded catalog run" in out  # summary still follows

    def test_set_overrides_catalog_knobs(self, tmp_path):
        out_path = tmp_path / "set.json"
        assert main(self.ARGS + ["--set", "num_channels=8",
                                 "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["metrics"]["num_channels"] == 8

    def test_unknown_set_key_fails_fast_listing_knobs(self, capsys):
        assert main(self.ARGS + ["--set", "channles=8"]) == 2
        err = capsys.readouterr().err
        assert "channles" in err
        assert "num_channels" in err  # the valid vocabulary is listed

    def test_geo_set_key_rejected_for_plain_catalog(self, capsys):
        """topology is a geo-factory knob; the single-region path must
        name it unknown instead of silently ignoring it."""
        assert main(self.ARGS + ["--set", 'topology="us-eu"']) == 2
        assert "unknown --set key" in capsys.readouterr().err


class TestGeoCatalog:
    ARGS = ["--channels", "4", "--chunks", "3", "--hours", "0.5",
            "--rate", "0.4", "--shards", "3", "--dt", "60",
            "--interval-minutes", "10"]

    def test_catalog_topology_switches_to_geo_engine(self, capsys):
        assert main(["catalog", "--topology", "us-eu-ap"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "catalog-geo-flash" in out
        assert "regions (topology)" in out
        assert "egress cost ($/h)" in out
        assert "latency-adj quality" in out

    def test_geo_subcommand_defaults_to_three_regions(self, capsys):
        assert main(["geo"] + self.ARGS + ["--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 (us-eu-ap, greedy)" in out

    def test_geo_exact_solver_reported(self, capsys):
        assert main(["geo", "--topology", "us-eu", "--exact"]
                    + self.ARGS) == 0
        assert "LP (exact)" in capsys.readouterr().out

    def test_geo_metrics_json_includes_geo_fields(self, tmp_path):
        out_path = tmp_path / "geo.json"
        assert main(["geo"] + self.ARGS + ["--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["topology"] == "us-eu-ap"
        assert payload["metrics"]["num_regions"] == 3
        assert "mean_remote_fraction" in payload["metrics"]
        assert "egress_cost_per_hour" in payload["metrics"]

    def test_unknown_topology_is_a_usage_error(self, capsys):
        assert main(["catalog", "--topology", "atlantis"] + self.ARGS) == 2
        assert "unknown geo topology" in capsys.readouterr().err

    def test_exact_without_topology_is_a_usage_error(self, capsys):
        """--exact only exists for the geo LP; silently running the
        single-region greedy instead would drop the user's request."""
        assert main(["catalog", "--exact"] + self.ARGS) == 2
        assert "--topology" in capsys.readouterr().err

    def test_set_invalid_topology_is_a_usage_error(self, capsys):
        """A bad topology smuggled in via --set must exit 2 with the
        preset list, same as --topology, not a raw traceback."""
        assert main(["geo"] + self.ARGS + ["--set", 'topology="bogus"']) == 2
        assert "unknown geo topology" in capsys.readouterr().err

    def test_set_invalid_value_is_a_usage_error(self, capsys):
        assert main(["catalog"] + self.ARGS
                    + ["--set", "num_channels=0"]) == 2
        assert "at least one channel" in capsys.readouterr().err

    def test_set_wrong_container_type_is_a_usage_error(self):
        """--set 'num_shards=[2]' parses as a list; the factory's
        TypeError must surface as exit 2, not a traceback."""
        assert main(["catalog"] + self.ARGS
                    + ["--set", "num_shards=[2]"]) == 2

    def test_set_overrides_geo_knobs(self, tmp_path):
        out_path = tmp_path / "geo-set.json"
        assert main(["geo"] + self.ARGS
                    + ["--set", 'topology="us-eu"',
                       "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["metrics"]["num_regions"] == 2
