"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.chunks == 20
        assert args.mode == "client-server"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestAnalyze:
    def test_client_server_output(self, capsys):
        assert main(["analyze", "--chunks", "6", "--rate", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "capacity analysis" in out
        assert "total cloud demand" in out
        assert "expected population" in out

    def test_p2p_output(self, capsys):
        assert main(
            ["analyze", "--chunks", "6", "--rate", "0.05", "--mode", "p2p"]
        ) == 0
        out = capsys.readouterr().out
        assert "peer offload" in out

    def test_p2p_upload_ratio_changes_demand(self, capsys):
        main(["analyze", "--chunks", "6", "--rate", "0.1", "--mode", "p2p",
              "--peer-upload-ratio", "0.1"])
        low = capsys.readouterr().out
        main(["analyze", "--chunks", "6", "--rate", "0.1", "--mode", "p2p",
              "--peer-upload-ratio", "2.0"])
        high = capsys.readouterr().out

        def total(text):
            line = [l for l in text.splitlines() if "total cloud demand" in l][0]
            return float(line.split(":")[1].split("Mbps")[0])

        assert total(high) <= total(low)


class TestTrace:
    def test_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(
            [
                "trace", str(out_path),
                "--channels", "3", "--chunks", "4",
                "--hours", "2", "--rate", "0.5", "--seed", "5",
            ]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["config"]["num_channels"] == 3
        assert payload["config"]["seed"] == 5
        assert len(payload["sessions"]) > 0
        assert "wrote" in capsys.readouterr().out


class TestRun:
    def test_small_run_summary(self, capsys):
        assert main(["run", "--mode", "p2p", "--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop run summary" in out
        assert "avg streaming quality" in out
        assert "VM cost ($/h)" in out


class TestInfo:
    def test_prints_tables(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "$100.0/h" in out
        assert "standard" in out and "advanced" in out and "high" in out
