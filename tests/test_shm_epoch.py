"""The shared-memory epoch transport (repro.sim.shm).

The sharded engine's data path ships every epoch's per-shard report
through one parent-owned shared-memory segment instead of pickling it
over the pipe.  The transport sits *outside* the determinism contract —
every value must round-trip bit-exactly — and its lifecycle must be
crash-proof: the parent is the only unlinker, so no worker exit path
(clean, exception, or SIGKILL mid-epoch) may leak a ``/dev/shm`` block.

These tests pin the round-trip down property-style over the block
layout, check that the merge over shm-backed reports is independent of
the order workers wrote their blocks, and kill a live worker mid-run to
assert the engine raises :class:`ShardEngineError` and still tears the
segment down.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.shard import (
    ChannelShard,
    EpochReport,
    ShardedSimulator,
    ShardEngineError,
    merge_epoch_reports,
    report_from_views,
    report_to_views,
)
from repro.sim.shm import EpochShmLayout, ParentSegment
from repro.vod.tracker import IntervalStats
from repro.workload.catalog import catalog_config


def small_config(**overrides):
    params = dict(
        num_channels=8,
        chunks_per_channel=4,
        horizon_hours=0.5,
        arrival_rate=0.5,
        num_shards=4,
        dt=60.0,
        interval_minutes=10.0,
    )
    params.update(overrides)
    return catalog_config(**params)


# ----------------------------------------------------------------------
# Round-trip: report -> block -> report, bit for bit
# ----------------------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
counts = st.integers(min_value=0, max_value=10_000)


def _synthetic_report(data, layout, shard_index):
    """One hypothesis-drawn EpochReport that fits the shard's block."""
    owned = layout.owned_ids[shard_index]
    chunks = layout.chunks
    n = data.draw(st.integers(0, layout.max_steps), label="n_steps")
    nq = data.draw(st.integers(0, layout.max_quality), label="n_quality")
    series = st.lists(finite, min_size=n, max_size=n)

    def arr(label):
        return np.asarray(data.draw(series, label=label), dtype=np.float64)

    stats = [
        IntervalStats(
            channel_id=int(cid),
            interval_seconds=layout.interval_seconds,
            arrivals=data.draw(counts),
            transition_counts=np.asarray(
                data.draw(st.lists(finite, min_size=chunks * chunks,
                                   max_size=chunks * chunks))
            ).reshape(chunks, chunks),
            departure_counts=np.asarray(
                data.draw(st.lists(finite, min_size=chunks, max_size=chunks))
            ),
            upload_capacity_sum=data.draw(finite),
            upload_capacity_samples=data.draw(counts),
            start_chunk_counts=np.asarray(
                data.draw(st.lists(finite, min_size=chunks, max_size=chunks))
            ),
        )
        for cid in owned
    ]
    return EpochReport(
        shard_index=shard_index,
        t_end=data.draw(finite, label="t_end"),
        stats=stats,
        step_times=arr("step_times"),
        cloud_used=arr("cloud_used"),
        peer_used=arr("peer_used"),
        provisioned=arr("provisioned"),
        shortfall=arr("shortfall"),
        populations=np.asarray(
            data.draw(st.lists(counts, min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        quality_samples=[
            (data.draw(finite), data.draw(counts), data.draw(counts))
            for _ in range(nq)
        ],
        arrivals=data.draw(counts),
        departures=data.draw(counts),
        retrievals=data.draw(counts),
        unsmooth=data.draw(counts),
        sojourn_sum=data.draw(finite),
        upload_sum=data.draw(finite),
        upload_count=data.draw(counts),
        peak_step_events=data.draw(counts),
        channel_populations={int(cid): data.draw(counts) for cid in owned},
    )


def assert_reports_identical(a: EpochReport, b: EpochReport) -> None:
    assert a.shard_index == b.shard_index
    assert a.t_end == b.t_end
    for name in ("step_times", "cloud_used", "peer_used", "provisioned",
                 "shortfall", "populations"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name
    assert a.quality_samples == b.quality_samples
    for sa, sb in zip(a.stats, b.stats):
        assert sa.channel_id == sb.channel_id
        assert sa.arrivals == sb.arrivals
        assert sa.transition_counts.tobytes() == sb.transition_counts.tobytes()
        assert sa.departure_counts.tobytes() == sb.departure_counts.tobytes()
        assert sa.start_chunk_counts.tobytes() == \
            sb.start_chunk_counts.tobytes()
        assert sa.upload_capacity_sum == sb.upload_capacity_sum
        assert sa.upload_capacity_samples == sb.upload_capacity_samples
    for name in ("arrivals", "departures", "retrievals", "unsmooth",
                 "sojourn_sum", "upload_sum", "upload_count",
                 "peak_step_events", "channel_populations"):
        assert getattr(a, name) == getattr(b, name), name


class TestBlockRoundTrip:
    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_round_trip_is_bit_exact(self, data):
        """Arbitrary finite payloads survive the block unchanged."""
        config = small_config()
        layout = EpochShmLayout(config)
        segment = ParentSegment(layout)
        try:
            shard_index = data.draw(
                st.integers(0, layout.num_shards - 1), label="shard"
            )
            report = _synthetic_report(data, layout, shard_index)
            views = layout.views(segment.buf, shard_index)
            report_to_views(
                views, report, layout.owned_ids[shard_index], 0.0
            )
            back = report_from_views(
                views, shard_index, layout.owned_ids[shard_index],
                layout.interval_seconds,
            )
            assert_reports_identical(report, back)
            del views, back  # release buffer views before unlink
        finally:
            segment.close()

    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_merge_independent_of_block_write_order(self, data):
        """Writing shard blocks in any order, the shard-index read-back
        merge reduces in the same fixed order — byte-identical floats."""
        config = small_config()
        layout = EpochShmLayout(config)
        steps = data.draw(st.integers(1, layout.max_steps))
        step_times = np.arange(1, steps + 1) * float(config.dt)

        def consistent_report(shard_index):
            report = _synthetic_report(data, layout, shard_index)
            report.step_times = step_times.copy()
            for name in ("cloud_used", "peer_used", "provisioned",
                         "shortfall"):
                setattr(report, name, np.resize(getattr(report, name), steps))
            report.populations = np.resize(report.populations, steps)
            report.quality_samples = []  # lock-step requires equal counts
            return report

        reports = [consistent_report(i) for i in range(layout.num_shards)]
        order = data.draw(st.permutations(list(range(layout.num_shards))))
        merged = []
        for _ in range(2):
            segment = ParentSegment(layout)
            try:
                for i in order:
                    report_to_views(
                        layout.views(segment.buf, i), reports[i],
                        layout.owned_ids[i], 0.0,
                    )
                back = [
                    report_from_views(
                        layout.views(segment.buf, i), i,
                        layout.owned_ids[i], layout.interval_seconds,
                    )
                    for i in range(layout.num_shards)
                ]
                merged.append(merge_epoch_reports(back))
                order = sorted(order)  # second pass: canonical write order
                del back
            finally:
                segment.close()
        a, b = merged
        for name in ("cloud_used", "peer_used", "provisioned", "shortfall",
                     "populations"):
            assert getattr(a, name).tobytes() == \
                getattr(b, name).tobytes(), name
        assert a.sojourn_sum == b.sojourn_sum
        assert a.upload_sum == b.upload_sum
        assert a.channel_populations == b.channel_populations


class TestLayout:
    def test_layout_is_deterministic(self):
        """Parent and worker derive identical offsets from the config."""
        config = small_config()
        a, b = EpochShmLayout(config), EpochShmLayout(config)
        assert a.block_offsets == b.block_offsets
        assert a.block_sizes == b.block_sizes
        assert a.total_size == b.total_size
        assert a.owned_ids == b.owned_ids

    def test_blocks_do_not_overlap(self):
        layout = EpochShmLayout(small_config())
        end = 0
        for offset, size in zip(layout.block_offsets, layout.block_sizes):
            assert offset == end
            end = offset + size
        assert end == layout.total_size

    def test_real_epoch_fits_the_block(self):
        """A real shard's epoch never exceeds the sized prefixes."""
        config = small_config()
        layout = EpochShmLayout(config)
        shard = ChannelShard(config, 0)
        report = shard.advance_epoch(config.interval_seconds)
        assert report.step_times.size <= layout.max_steps
        assert len(report.quality_samples) <= layout.max_quality


# ----------------------------------------------------------------------
# Lifecycle: idempotent teardown, no leaks on worker death
# ----------------------------------------------------------------------

def _shm_entries():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        }
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


class TestLifecycle:
    def test_parent_segment_close_is_idempotent(self):
        before = _shm_entries()
        segment = ParentSegment(EpochShmLayout(small_config()))
        assert _shm_entries() - before
        segment.close()
        segment.close()
        assert _shm_entries() == before

    def test_engine_close_is_idempotent(self):
        engine = ShardedSimulator(small_config(), jobs=2)
        engine.start()
        engine.advance_epoch()
        engine.close()
        engine.close()

    def test_killed_worker_raises_and_leaks_nothing(self):
        """SIGKILL a worker mid-run: the next epoch must surface a
        ShardEngineError and close() must still unlink the segment."""
        before = _shm_entries()
        engine = ShardedSimulator(small_config(), jobs=2)
        try:
            assert engine.advance_epoch() is not None
            assert engine._workers and engine._segment is not None
            os.kill(engine._workers[0].pid, signal.SIGKILL)
            engine._workers[0].join(timeout=10.0)
            with pytest.raises(ShardEngineError):
                while engine.advance_epoch() is not None:
                    pass
        finally:
            engine.close()
        assert _shm_entries() == before

    def test_clean_run_leaks_nothing(self):
        before = _shm_entries()
        with ShardedSimulator(small_config(), jobs=2) as engine:
            engine.run()
        assert _shm_entries() == before
