"""Tests for repro.core.storage_rental: Eqn (6) solvers."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.cluster import NFSClusterSpec
from repro.core.storage_rental import (
    StorageProblem,
    exhaustive_storage_rental,
    greedy_storage_rental,
    lp_storage_bound,
)

CHUNK = 15e6  # 15 MB


def cluster(name, utility, price, slots):
    """An NFS cluster that holds exactly ``slots`` chunks."""
    return NFSClusterSpec(
        name=name,
        utility=utility,
        price_per_gb_hour=price,
        capacity_bytes=slots * CHUNK,
    )


def problem(demands, clusters, budget):
    return StorageProblem(
        demands=demands,
        chunk_size_bytes=CHUNK,
        clusters=clusters,
        budget_per_hour=budget,
    )


class TestGreedy:
    def test_prefers_best_utility_per_dollar(self):
        # "high" has better u/p here.
        clusters = [
            cluster("low", utility=0.8, price=2e-4, slots=10),
            cluster("high", utility=1.0, price=1e-4, slots=10),
        ]
        plan = greedy_storage_rental(
            problem({("c", 0): 5.0, ("c", 1): 3.0}, clusters, budget=1.0)
        )
        assert plan.feasible
        assert plan.placement[("c", 0)] == "high"
        assert plan.placement[("c", 1)] == "high"

    def test_hottest_chunks_get_best_cluster_when_full(self):
        clusters = [
            cluster("best", utility=1.0, price=1e-4, slots=1),
            cluster("other", utility=0.5, price=1e-4, slots=10),
        ]
        demands = {("c", 0): 1.0, ("c", 1): 100.0}
        plan = greedy_storage_rental(problem(demands, clusters, budget=1.0))
        assert plan.placement[("c", 1)] == "best"  # hottest chunk
        assert plan.placement[("c", 0)] == "other"

    def test_budget_infeasible_reported(self):
        clusters = [cluster("only", 1.0, 1e-1, slots=10)]
        demands = {("c", i): 1.0 for i in range(5)}
        cost_per_chunk = clusters[0].price_per_byte_hour * CHUNK
        plan = greedy_storage_rental(
            problem(demands, clusters, budget=2.5 * cost_per_chunk)
        )
        assert not plan.feasible
        assert len(plan.unplaced) == 3
        assert plan.cost_per_hour <= 2.5 * cost_per_chunk + 1e-12

    def test_capacity_infeasible_reported(self):
        clusters = [cluster("tiny", 1.0, 1e-4, slots=2)]
        demands = {("c", i): float(i) for i in range(4)}
        plan = greedy_storage_rental(problem(demands, clusters, budget=100.0))
        assert not plan.feasible
        assert len(plan.placement) == 2
        # The two hottest chunks were placed.
        assert ("c", 3) in plan.placement and ("c", 2) in plan.placement

    def test_zero_demand_chunks_still_placed(self):
        # One copy of every chunk is required even if nobody watches it.
        clusters = [cluster("a", 1.0, 1e-4, slots=10)]
        plan = greedy_storage_rental(
            problem({("c", 0): 0.0, ("c", 1): 0.0}, clusters, budget=1.0)
        )
        assert plan.feasible
        assert len(plan.placement) == 2

    def test_objective_accounting(self):
        clusters = [
            cluster("a", 1.0, 1e-4, slots=1),
            cluster("b", 0.5, 1e-4, slots=1),
        ]
        plan = greedy_storage_rental(
            problem({("c", 0): 10.0, ("c", 1): 2.0}, clusters, budget=1.0)
        )
        assert plan.objective == pytest.approx(1.0 * 10.0 + 0.5 * 2.0)

    def test_cheaper_cluster_used_when_budget_tight(self):
        # Best u/p cluster is expensive in absolute terms; with a tight
        # budget the heuristic falls back to the affordable one.
        clusters = [
            cluster("pricey", utility=1.0, price=1e-2, slots=10),
            cluster("cheap", utility=0.9, price=1e-4, slots=10),
        ]
        cheap_cost = clusters[1].price_per_byte_hour * CHUNK
        plan = greedy_storage_rental(
            problem({("c", 0): 1.0}, clusters, budget=2 * cheap_cost)
        )
        assert plan.feasible
        assert plan.placement[("c", 0)] == "cheap"

    def test_facility_placement_conversion(self):
        clusters = [cluster("a", 1.0, 1e-4, slots=4)]
        plan = greedy_storage_rental(
            problem({("c", 0): 1.0}, clusters, budget=1.0)
        )
        placement = plan.to_facility_placement(CHUNK)
        assert placement[("c", 0)] == ("a", CHUNK)


class TestAgainstOracles:
    def test_matches_exhaustive_on_easy_instance(self):
        # No binding constraints: greedy should be exactly optimal.
        clusters = [
            cluster("a", 1.0, 1e-4, slots=5),
            cluster("b", 0.6, 2e-4, slots=5),
        ]
        demands = {("c", i): float(i + 1) for i in range(3)}
        greedy = greedy_storage_rental(problem(demands, clusters, 1.0))
        exact = exhaustive_storage_rental(problem(demands, clusters, 1.0))
        assert greedy.objective == pytest.approx(exact.objective)

    def test_never_beats_exhaustive(self):
        rng = np.random.default_rng(5)
        for trial in range(10):
            clusters = [
                cluster("a", 1.0, float(rng.uniform(1e-4, 5e-4)), slots=2),
                cluster("b", float(rng.uniform(0.3, 0.9)),
                        float(rng.uniform(1e-4, 5e-4)), slots=3),
            ]
            demands = {("c", i): float(rng.uniform(0, 10)) for i in range(4)}
            budget = float(rng.uniform(0.5, 2.0)) * clusters[0].price_per_byte_hour * CHUNK * 4
            g = greedy_storage_rental(problem(demands, clusters, budget))
            e = exhaustive_storage_rental(problem(demands, clusters, budget))
            if g.feasible and e.feasible:
                assert g.objective <= e.objective + 1e-9

    def test_lp_bound_dominates_greedy(self):
        clusters = [
            cluster("a", 1.0, 1e-4, slots=3),
            cluster("b", 0.7, 3e-4, slots=5),
        ]
        demands = {("c", i): float(i + 1) for i in range(6)}
        prob = problem(demands, clusters, budget=1.0)
        greedy = greedy_storage_rental(prob)
        bound = lp_storage_bound(prob)
        assert greedy.feasible
        assert greedy.objective <= bound + 1e-6

    def test_exhaustive_rejects_huge_instances(self):
        clusters = [cluster(f"c{i}", 1.0, 1e-4, slots=100) for i in range(4)]
        demands = {("c", i): 1.0 for i in range(30)}
        with pytest.raises(ValueError, match="too large"):
            exhaustive_storage_rental(problem(demands, clusters, 100.0))

    @given(
        num_chunks=st.integers(min_value=1, max_value=6),
        budget_scale=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_respects_constraints(self, num_chunks, budget_scale):
        clusters = [
            cluster("a", 1.0, 2e-4, slots=3),
            cluster("b", 0.8, 1e-4, slots=3),
        ]
        demands = {("c", i): float(i) for i in range(num_chunks)}
        base_cost = clusters[1].price_per_byte_hour * CHUNK * num_chunks
        plan = greedy_storage_rental(
            problem(demands, clusters, budget=budget_scale * base_cost)
        )
        # Capacity respected.
        loads = plan.cluster_loads()
        assert loads.get("a", 0) <= 3 and loads.get("b", 0) <= 3
        # Budget respected.
        assert plan.cost_per_hour <= budget_scale * base_cost + 1e-9
        # Feasible iff everything placed.
        assert plan.feasible == (len(plan.placement) == num_chunks)


class TestValidation:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            problem({("c", 0): -1.0}, [cluster("a", 1.0, 1e-4, 2)], 1.0)

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError):
            problem(
                {("c", 0): 1.0},
                [cluster("a", 1.0, 1e-4, 2), cluster("a", 0.5, 1e-4, 2)],
                1.0,
            )

    def test_empty_clusters_rejected(self):
        with pytest.raises(ValueError):
            problem({("c", 0): 1.0}, [], 1.0)
