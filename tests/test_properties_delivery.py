"""Property-based tests: conservation laws of the delivery models.

Whatever the state, a delivery round must never create bandwidth: cloud
usage is bounded by the provisioned capacity, peer usage by the peers'
aggregate upload capacity, per-user rates by the cap, and the delivered
total must equal what the cloud and peers supplied.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vod.delivery import ClientServerDelivery, P2PDelivery
from repro.vod.user import UserStore

R = 10e6 / 8.0
NUM_CHUNKS = 5


@st.composite
def store_and_capacity(draw):
    """A random user store plus per-chunk cloud capacities."""
    num_users = draw(st.integers(min_value=0, max_value=30))
    store = UserStore(NUM_CHUNKS)
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    for _ in range(num_users):
        chunk = int(rng.integers(0, NUM_CHUNKS))
        upload = float(rng.uniform(0, 2 * R))
        uid = store.add_user(0.0, chunk, upload)
        # Random buffered chunks.
        owned = rng.random(NUM_CHUNKS) < 0.4
        store.grant_chunks(uid, owned)
        # Some users are watching (holding), not downloading.
        if rng.random() < 0.25:
            store.begin_hold(uid, 100.0, 0, chunk)
        # Some departed.
        if rng.random() < 0.1:
            store.depart(uid)
    capacity = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5 * R),
                min_size=NUM_CHUNKS,
                max_size=NUM_CHUNKS,
            )
        )
    )
    return store, capacity


class TestClientServerConservation:
    @given(data=store_and_capacity())
    @settings(max_examples=80, deadline=None)
    def test_no_bandwidth_created(self, data):
        store, capacity = data
        outcome = ClientServerDelivery(R).allocate(store, capacity)
        downloaders = store.downloaders_per_chunk().astype(float)
        # Cloud usage bounded by capacity and by demand.
        assert outcome.cloud_used <= capacity.sum() + 1e-6
        assert outcome.cloud_used <= downloaders.sum() * R + 1e-6
        # No peer magic in client-server mode.
        assert outcome.peer_used == 0.0
        # Per-user rates respect the cap and idle chunks get nothing.
        assert np.all(outcome.per_user_rates <= R + 1e-9)
        assert np.all(outcome.per_user_rates[downloaders == 0] == 0.0)
        # Delivered == cloud used (single source).
        delivered = float((outcome.per_user_rates * downloaders).sum())
        assert delivered == pytest.approx(outcome.cloud_used, rel=1e-9, abs=1e-6)
        # Shortfall accounting closes the balance.
        assert outcome.cloud_shortfall == pytest.approx(
            downloaders.sum() * R - delivered, rel=1e-9, abs=1e-6
        )


class TestP2PConservation:
    @given(data=store_and_capacity())
    @settings(max_examples=80, deadline=None)
    def test_no_bandwidth_created(self, data):
        store, capacity = data
        outcome = P2PDelivery(R).allocate(store, capacity)
        downloaders = store.downloaders_per_chunk().astype(float)
        total_upload = store.total_upload_capacity()
        assert outcome.peer_used <= total_upload + 1e-6
        assert outcome.cloud_used <= capacity.sum() + 1e-6
        assert np.all(outcome.per_user_rates <= R + 1e-9)
        assert np.all(outcome.per_user_rates >= 0.0)
        delivered = float((outcome.per_user_rates * downloaders).sum())
        assert delivered == pytest.approx(
            outcome.cloud_used + outcome.peer_used, rel=1e-6, abs=1e-3
        )
        assert delivered <= downloaders.sum() * R + 1e-6

    @given(data=store_and_capacity())
    @settings(max_examples=40, deadline=None)
    def test_p2p_cloud_never_exceeds_client_server(self, data):
        """Adding peer supply can only reduce cloud usage."""
        store, capacity = data
        p2p = P2PDelivery(R).allocate(store, capacity)
        cs = ClientServerDelivery(R).allocate(store, capacity)
        assert p2p.cloud_used <= cs.cloud_used + 1e-6

    @given(data=store_and_capacity())
    @settings(max_examples=40, deadline=None)
    def test_p2p_serves_at_least_as_much(self, data):
        """Peer supply can only increase the total delivered bandwidth."""
        store, capacity = data
        downloaders = store.downloaders_per_chunk().astype(float)
        p2p = P2PDelivery(R).allocate(store, capacity)
        cs = ClientServerDelivery(R).allocate(store, capacity)
        p2p_delivered = float((p2p.per_user_rates * downloaders).sum())
        cs_delivered = float((cs.per_user_rates * downloaders).sum())
        assert p2p_delivered >= cs_delivered - 1e-6
