"""Tests for the multi-region catalog engine.

The geo engine inherits the sharded engine's mechanics (lock-step
epochs, shard-order merge) over a slot space of (region, channel) pairs
and swaps in the multi-region control plane.  These tests pin down

* the slot-space workload: region splits from stable spawn keys, slot
  shapes independent of the shard partition, region-major slot order;
* byte-determinism: jobs 1 vs 4 identical artifacts for a 3-region
  catalog, geo telemetry included;
* the control plane: LP >= greedy on the engine's own epoch problems,
  cross-region spill + egress metering under capacity pressure, and
  latency-discounted quality wiring;
* the registry/CLI surface of the ``catalog-geo-*`` scenarios.
"""

import numpy as np
import pytest

from repro.api import EngineConfig, open_run
from repro.cloud.billing import BillingMeter
from repro.geo.allocation import (
    GeoVMProblem,
    greedy_geo_allocation,
    lp_geo_allocation,
)
from repro.sim.shard import (
    GeoCatalogResult,
    GeoShardedSimulator,
    ShardedSimulator,
    make_engine,
    summarize_catalog,
)
from repro.vod.metrics import latency_adjusted_quality
from repro.workload.catalog import (
    GEO_TOPOLOGIES,
    GeoCatalogConfig,
    catalog_config,
    channel_shapes,
    geo_catalog_config,
    shard_channel_ids,
)

RESULT_ARRAYS = (
    "times", "cloud_used", "peer_used", "provisioned", "shortfall",
    "populations", "quality_times", "quality",
)


def small_geo_config(**overrides):
    params = dict(
        num_channels=6,
        chunks_per_channel=4,
        horizon_hours=0.5,
        arrival_rate=0.8,
        num_shards=5,
        dt=60.0,
        interval_minutes=10.0,
        phase_jitter_hours=3.0,
        flash_fraction=0.5,
        flash_hour=0.25,
        flash_width_hours=0.25,
        flash_amplitude=4.0,
    )
    params.update(overrides)
    return geo_catalog_config(**params)


# ----------------------------------------------------------------------
# Slot-space workload
# ----------------------------------------------------------------------

class TestGeoWorkload:
    def test_slot_space_is_region_major(self):
        config = small_geo_config()
        assert config.num_regions == 3
        assert config.channel_slots == 3 * config.num_channels
        for r in range(config.num_regions):
            for c in range(config.num_channels):
                slot = config.slot_id(r, c)
                assert config.slot_region_index(slot) == r
                assert config.slot_channel(slot) == c
                assert config.slot_region(slot) == config.region_names[r]

    def test_region_splits_sum_to_one_and_are_stable(self):
        config = small_geo_config()
        splits = config.region_splits()
        assert splits.shape == (config.num_regions, config.num_channels)
        assert np.allclose(splits.sum(axis=0), 1.0)
        # Stable spawn keys: same seed -> same splits, regardless of the
        # shard count; a different seed perturbs them.
        again = small_geo_config(num_shards=11).region_splits()
        assert np.array_equal(splits, again)
        other = small_geo_config(seed=99).region_splits()
        assert not np.array_equal(splits, other)

    def test_slot_rates_conserve_the_catalog_rate(self):
        config = small_geo_config()
        assert config.channel_rates().sum() == pytest.approx(
            config.mean_arrival_rate
        )
        # Each channel's Zipf mass is split, not duplicated, per region.
        per_channel = config.channel_rates().reshape(
            config.num_regions, config.num_channels
        ).sum(axis=0)
        assert np.allclose(per_channel, config.catalog_channel_rates())

    def test_channel_level_draws_shared_across_regions(self):
        """Phase jitter and flash amplitude are channel-level draws: the
        same channel differs across regions only by the region's UTC
        offset (flash crowds stay global events)."""
        config = small_geo_config()
        shapes = channel_shapes(config)
        offsets = config.preset["utc_offset_hours"]
        for c in range(config.num_channels):
            per_region = [
                shapes[config.slot_id(r, c)]
                for r in range(config.num_regions)
            ]
            amplitudes = {s.flash_amplitude for s in per_region}
            assert len(amplitudes) == 1
            base_phase = per_region[0].phase_seconds - offsets[0] * 3600.0
            for r, shape in enumerate(per_region):
                assert shape.phase_seconds - offsets[r] * 3600.0 == \
                    pytest.approx(base_phase)

    def test_shard_partition_covers_all_slots(self):
        config = small_geo_config(num_shards=4)
        seen = []
        for shard in range(config.effective_shards):
            seen.extend(shard_channel_ids(config, shard))
        assert sorted(seen) == list(range(config.channel_slots))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            small_geo_config(topology="atlantis")

    def test_vm_clusters_region_prefixed_and_priced(self):
        config = small_geo_config()
        specs = {s.name: s for s in config.vm_clusters()}
        assert len(specs) == 3 * config.num_regions
        factors = dict(zip(config.region_names,
                           config.preset["price_factors"]))
        base = {s.name.split(":", 1)[1]: s for s in specs.values()
                if s.name.startswith("us-east:")}
        for name, spec in specs.items():
            region, cluster = name.split(":", 1)
            assert spec.price_per_hour == pytest.approx(
                base[cluster].price_per_hour
                / factors["us-east"] * factors[region]
            )


# ----------------------------------------------------------------------
# Engine determinism
# ----------------------------------------------------------------------

class TestGeoDeterminism:
    def test_jobs_do_not_change_results(self):
        """jobs=1 vs jobs=4 (uneven worker split over 5 shards) must be
        byte-identical, geo telemetry included."""
        config = small_geo_config()
        with make_engine(config, jobs=1) as engine:
            serial = engine.run()
        with make_engine(config, jobs=4) as engine:
            parallel = engine.run()
        assert isinstance(serial, GeoCatalogResult)
        assert summarize_catalog(serial) == summarize_catalog(parallel)
        for name in RESULT_ARRAYS:
            a, b = getattr(serial, name), getattr(parallel, name)
            assert a.tobytes() == b.tobytes(), name
        assert serial.epoch_discounts == parallel.epoch_discounts
        assert serial.epoch_remote_fractions == \
            parallel.epoch_remote_fractions
        assert serial.epoch_egress_rates == parallel.epoch_egress_rates
        assert serial.channel_populations == parallel.channel_populations

    def test_make_engine_dispatches_on_config_type(self):
        geo = make_engine(small_geo_config(), jobs=1)
        assert isinstance(geo, GeoShardedSimulator)
        geo.close()
        plain = make_engine(
            catalog_config(num_channels=4, chunks_per_channel=2), jobs=1
        )
        assert isinstance(plain, ShardedSimulator)
        assert not isinstance(plain, GeoShardedSimulator)
        plain.close()
        with pytest.raises(TypeError, match="GeoCatalogConfig"):
            GeoShardedSimulator(
                catalog_config(num_channels=4, chunks_per_channel=2)
            )


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------

class TestGeoControlPlane:
    def test_lp_bounds_greedy_on_engine_problems(self):
        """The LP optimum dominates the greedy on the engine's own epoch
        problems (rebuilt from the recorded decisions)."""
        config = small_geo_config(horizon_hours=0.5)
        with make_engine(config, jobs=1) as engine:
            engine.run()
            topology = engine.controller.topology
            checked = 0
            for decision in engine.controller.decisions:
                demands = engine.controller._regional_demands(
                    decision.demands
                )
                problem = GeoVMProblem(
                    topology=topology,
                    demands=demands,
                    vm_bandwidth=engine.controller.vm_bandwidth,
                    budget_per_hour=(
                        engine.controller.terms.vm_budget_per_hour
                    ),
                )
                greedy = greedy_geo_allocation(problem)
                lp = lp_geo_allocation(problem)
                if greedy.feasible and lp.feasible:
                    assert lp.objective >= greedy.objective - 1e-6
                    checked += 1
        assert checked > 0

    def test_exact_engine_runs_and_matches_greedy_feasibility(self):
        config = small_geo_config(
            num_channels=4, chunks_per_channel=3, horizon_hours=0.5,
            exact=True,
        )
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            result = run.result()
        metrics = summarize_catalog(result)
        assert metrics["num_regions"] == 3
        assert 0.0 <= metrics["latency_adjusted_quality"] <= 1.0
        assert metrics["latency_adjusted_quality"] <= \
            metrics["average_quality"] + 1e-12

    def test_capacity_pressure_spills_across_regions(self):
        """With tight per-region clusters and a catalog-wide flash
        crowd, some demand must be served remotely — and the remote
        VM-hours show up as metered egress dollars."""
        config = small_geo_config(
            num_channels=8, chunks_per_channel=4, arrival_rate=1.0,
            flash_fraction=1.0, flash_amplitude=6.0, cluster_scale=2.0,
            num_shards=4, phase_jitter_hours=0.0,
        )
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            result = run.result()
        assert max(result.epoch_remote_fractions) > 0.0
        assert max(result.epoch_egress_rates) > 0.0
        assert result.cost_report.egress_cost > 0.0
        assert result.cost_report.hourly_egress_cost > 0.0
        metrics = summarize_catalog(result)
        assert metrics["mean_remote_fraction"] > 0.0
        assert metrics["egress_cost_per_hour"] > 0.0

    def test_local_serving_discount_is_the_local_latency(self):
        """A run with no remote serving still reports the intra-region
        discount 0.5 ** (local latency / half-life), never exactly 1."""
        config = small_geo_config(flash_fraction=0.0, arrival_rate=0.3)
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            result = run.result()
        preset = GEO_TOPOLOGIES[config.topology]
        local = 0.5 ** (5.0 / preset["latency_halflife_ms"])
        if max(result.epoch_remote_fractions) == 0.0:
            assert result.mean_latency_discount == pytest.approx(local)
        else:  # pragma: no cover - depends on auto-sizing headroom
            assert result.mean_latency_discount < local + 1e-12

    def test_storage_rental_planned_and_billed(self):
        """The geo loop keeps the Eqn (6) storage leg: chunks are placed
        at channel granularity (one copy serves every region) and the
        stored bytes accrue real cost — not the silent $0 of a VM-only
        loop."""
        config = small_geo_config()
        with make_engine(config, jobs=1) as engine:
            result = engine.run()
            bootstrap = engine.controller.decisions[0]
            assert bootstrap.storage_plan is not None
            assert bootstrap.storage_plan.feasible
            placed = set(bootstrap.storage_plan.placement)
            # Channel-level keys: every (channel, chunk), never slots.
            assert placed == {
                (c, i)
                for c in range(config.num_channels)
                for i in range(config.chunks_per_channel)
            }
        assert result.cost_report.storage_cost > 0.0
        metrics = summarize_catalog(result)
        assert metrics["storage_cost_per_day"] > 0.0

    def test_geo_engine_p2p_mode(self):
        config = small_geo_config(
            mode="p2p", num_channels=4, chunks_per_channel=3,
            horizon_hours=0.5,
        )
        with open_run(EngineConfig(spec=config, workers=2)) as run:
            metrics = summarize_catalog(run.result())
        assert metrics["arrivals"] > 0
        assert metrics["num_regions"] == 3


# ----------------------------------------------------------------------
# Quality discount + billing units
# ----------------------------------------------------------------------

class TestGeoAccounting:
    def test_latency_adjusted_quality_maps_epochs(self):
        times = np.array([100.0, 550.0, 600.0, 900.0])
        quality = np.array([1.0, 0.8, 0.5, 1.0])
        ends = np.array([600.0, 1200.0])
        discounts = np.array([0.9, 0.5])
        adjusted = latency_adjusted_quality(times, quality, ends, discounts)
        # Epoch 1 covers (0, 600], epoch 2 covers (600, 1200].
        assert adjusted == pytest.approx([0.9, 0.72, 0.45, 0.5])

    def test_latency_adjusted_quality_validates(self):
        with pytest.raises(ValueError, match="align"):
            latency_adjusted_quality(
                np.array([1.0]), np.array([1.0, 2.0]),
                np.array([1.0]), np.array([1.0]),
            )
        with pytest.raises(ValueError, match="epoch"):
            latency_adjusted_quality(
                np.array([1.0]), np.array([1.0]),
                np.array([]), np.array([]),
            )
        empty = latency_adjusted_quality(
            np.array([]), np.array([]), np.array([1.0]), np.array([0.5])
        )
        assert empty.size == 0

    def test_rejected_request_does_not_meter_egress(self):
        """When the broker rejects a request the facility keeps its
        previous allocation, so the rejected plan's egress rate must not
        start billing (remote capacity that was never deployed)."""
        from repro.cloud.broker import NegotiationError

        config = small_geo_config(num_channels=4, chunks_per_channel=3)
        with make_engine(config, jobs=1) as engine:
            controller = engine.controller

            def deny(request):
                raise NegotiationError("denied by test")

            controller.broker.request = deny
            rates = {
                c: float(r) for c, r in enumerate(config.channel_rates())
            }
            decision = controller.bootstrap(0.0, rates)
            assert decision.rejected is not None
            assert decision.egress_rate_per_hour == 0.0
            billing = controller.broker.facility.billing
            assert billing.current_egress_cost_rate() == 0.0

    def test_billing_meter_accrues_egress(self):
        meter = BillingMeter({}, {})
        meter.record_egress_rate(0.0, 6.0)     # $6/h
        meter.record_egress_rate(1800.0, 0.0)  # off after 30 min
        report = meter.report(7200.0)
        assert report.egress_cost == pytest.approx(3.0)
        assert report.hourly_egress_cost == pytest.approx(1.5)
        assert report.total_cost == pytest.approx(3.0)
        with pytest.raises(ValueError):
            meter.record_egress_rate(7200.0, -1.0)


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------

class TestGeoRegistry:
    SMALL = {
        "num_channels": 4, "chunks_per_channel": 3, "horizon_hours": 0.5,
        "arrival_rate": 0.5, "num_shards": 3, "dt": 60.0,
        "interval_minutes": 10.0, "mode": "client-server",
    }

    def test_geo_catalog_scenarios_registered(self):
        from repro.experiments import registry

        for name in ("catalog-geo-zipf", "catalog-geo-flash"):
            spec = registry.get(name)
            assert "geo" in spec.tags and "catalog" in spec.tags
            assert spec.defaults["topology"] == "us-eu-ap"
            assert spec.defaults["exact"] is False

    def test_run_cell_returns_geo_metrics(self):
        from repro.experiments import registry

        metrics = registry.get("catalog-geo-zipf").run_cell(
            self.SMALL, seed=2011
        )
        for key in ("arrivals", "num_regions", "mean_remote_fraction",
                    "egress_cost_per_hour", "mean_latency_discount",
                    "latency_adjusted_quality"):
            assert key in metrics
        assert metrics["num_regions"] == 3
        assert metrics["arrivals"] > 0

    def test_topology_is_a_sweepable_knob(self):
        from repro.experiments import registry

        metrics = registry.get("catalog-geo-zipf").run_cell(
            {**self.SMALL, "topology": "us-eu"}, seed=2011
        )
        assert metrics["num_regions"] == 2
