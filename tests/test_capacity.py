"""Tests for repro.queueing.capacity: the equilibrium server solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.capacity import (
    CapacityModel,
    required_servers,
    solve_channel_capacity,
)
from repro.queueing.erlang import (
    mmm_expected_number_in_system,
    mmm_expected_sojourn_time,
)
from repro.queueing.transitions import sequential_matrix, uniform_jump_matrix

# The paper's physical constants.
R = 10e6 / 8.0  # 10 Mbps
r = 50_000.0  # 50 KB/s
T0 = 300.0  # 5 minutes


@pytest.fixture
def model():
    return CapacityModel(streaming_rate=r, chunk_duration=T0, vm_bandwidth=R)


class TestCapacityModel:
    def test_paper_constants(self, model):
        assert model.chunk_size_bytes == pytest.approx(15e6)  # 15 MB
        # mu = R / (r T0): 1.25 MB/s / 15 MB = 1/12 per second.
        assert model.service_rate == pytest.approx(1.25e6 / 15e6)
        assert model.mean_download_time == pytest.approx(12.0)
        assert model.mean_download_time < T0

    def test_requires_r_greater_than_streaming_rate(self):
        with pytest.raises(ValueError, match="exceed"):
            CapacityModel(streaming_rate=100.0, chunk_duration=10.0, vm_bandwidth=100.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CapacityModel(streaming_rate=0, chunk_duration=1, vm_bandwidth=10)
        with pytest.raises(ValueError):
            CapacityModel(streaming_rate=1, chunk_duration=0, vm_bandwidth=10)


class TestRequiredServers:
    def test_zero_arrivals_need_nothing(self):
        assert required_servers(0.0, 0.5, 10.0) == 0

    def test_result_meets_target(self):
        lam, mu, t = 2.0, 1.0 / 12.0, 300.0
        m = required_servers(lam, mu, t)
        assert mmm_expected_sojourn_time(m, lam, mu) <= t + 1e-9

    def test_result_is_minimal(self):
        lam, mu, t = 2.0, 1.0 / 12.0, 300.0
        m = required_servers(lam, mu, t)
        offered = lam / mu
        if m - 1 > offered:  # m-1 stable: must violate the target
            assert (
                mmm_expected_number_in_system(m - 1, offered) > lam * t
            )

    def test_stability(self):
        lam, mu = 5.0, 0.1
        m = required_servers(lam, mu, 30.0)
        assert m > lam / mu

    def test_infeasible_target_rejected(self):
        # Target below the bare service time is impossible.
        with pytest.raises(ValueError, match="no server count"):
            required_servers(1.0, 0.1, 5.0)

    def test_tight_target_needs_more_servers(self):
        lam, mu = 3.0, 0.2
        loose = required_servers(lam, mu, 30.0)
        tight = required_servers(lam, mu, 5.5)
        assert tight >= loose

    def test_monotone_in_arrival_rate(self):
        mu, t = 1.0 / 12.0, 300.0
        counts = [required_servers(lam, mu, t) for lam in (0.1, 0.5, 2.0, 8.0)]
        assert all(x <= y for x, y in zip(counts, counts[1:]))

    @given(
        lam=st.floats(min_value=0.001, max_value=50.0),
        slack=st.floats(min_value=1.05, max_value=30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_target_always_met(self, lam, slack):
        mu = 1.0 / 12.0
        target = slack * (1.0 / mu)
        m = required_servers(lam, mu, target)
        assert m >= 1
        assert mmm_expected_sojourn_time(m, lam, mu) <= target + 1e-6


class TestChannelCapacity:
    def test_end_to_end_sequential(self, model):
        p = sequential_matrix(6, continue_prob=0.85)
        result = solve_channel_capacity(model, p, external_rate=0.5, alpha=1.0)
        # Arrival rates decay along the chain; so should server counts.
        assert np.all(np.diff(result.traffic.arrival_rates) <= 1e-12)
        assert np.all(np.diff(result.servers) <= 0)
        assert result.total_servers >= 1

    def test_sojourn_target_met_everywhere(self, model):
        p = uniform_jump_matrix(8, 0.6, 0.2)
        result = solve_channel_capacity(model, p, external_rate=1.0)
        mu = model.service_rate
        for lam, m in zip(result.traffic.arrival_rates, result.servers):
            if lam > 0:
                assert mmm_expected_sojourn_time(m, lam, mu) <= T0 + 1e-6

    def test_expected_in_system_bounded_by_littles_law(self, model):
        p = uniform_jump_matrix(5, 0.6, 0.2)
        result = solve_channel_capacity(model, p, external_rate=2.0)
        target = result.traffic.arrival_rates * T0
        assert np.all(result.expected_in_system <= target + 1e-6)

    def test_bandwidth_is_r_times_servers(self, model):
        p = uniform_jump_matrix(4, 0.5, 0.2)
        result = solve_channel_capacity(model, p, external_rate=1.0)
        assert result.upload_bandwidth == pytest.approx(R * result.servers)
        assert result.cloud_demand == pytest.approx(result.upload_bandwidth)

    def test_zero_rate_channel(self, model):
        p = sequential_matrix(4, 0.8)
        result = solve_channel_capacity(model, p, external_rate=0.0)
        assert result.total_servers == 0
        assert result.total_bandwidth == 0.0

    def test_population_scales_with_rate(self, model):
        p = uniform_jump_matrix(5, 0.6, 0.2)
        small = solve_channel_capacity(model, p, external_rate=0.2)
        large = solve_channel_capacity(model, p, external_rate=2.0)
        assert large.expected_population > small.expected_population

    def test_explicit_external_rates(self, model):
        p = sequential_matrix(3, 0.5)
        ext = np.array([1.0, 0.0, 0.5])
        result = solve_channel_capacity(
            model, p, external_rate=0.0, external_rates=ext
        )
        assert result.traffic.external_rates == pytest.approx(ext)
