"""Suite-wide fixtures.

The sharded engine's data path allocates ``multiprocessing.
shared_memory`` segments (``/dev/shm/psm_*``); the parent engine is the
single owner and must unlink them on every exit path.  The guard below
fails the suite if any test — including crashed-worker scenarios —
leaves a segment behind, so a lifecycle regression cannot hide behind
passing functional tests.
"""

import os

import pytest


def _shm_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        }
    except FileNotFoundError:  # non-tmpfs platform: nothing to guard
        return set()


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shm_segments():
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, (
        f"test run leaked shared-memory segments: {sorted(leaked)} "
        "(the parent engine owns unlink — see repro/sim/shm.py)"
    )
