"""Tests for repro.core.controller: the policy protocol and rival zoo.

Four concerns:

* the registry resolves every policy key to working single-region and
  geo controller classes and fails fast on unknown keys;
* the paper controller is *byte-identical* through the protocol refactor
  (controller=None vs controller="paper", all three engines);
* the policy state machines match hand-computed traces (reactive
  hysteresis, Adapt level+trend damping, PID anti-windup and bounded
  actuation, MPC greedy fallback);
* the ``ablation-controllers`` summary artifact has the promised schema.
"""

import json
import types

import numpy as np
import pytest

from repro.cloud.broker import Broker
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.scheduler import CloudFacility
from repro.core.controller import (
    CONTROLLERS,
    AdaptEstimator,
    PIDLoop,
    ReactiveScaler,
    controller_class,
    controller_names,
)
from repro.core.demand import DemandEstimator
from repro.core.provisioner import (
    MPCProvisioningController,
    PIDProvisioningController,
    ProvisioningController,
)
from repro.core.sla import SLATerms
from repro.queueing.capacity import CapacityModel
from repro.vod.tracker import TrackingServer

R = 10e6 / 8.0
r = 50_000.0


def make_facility():
    vm = [
        VirtualClusterSpec("standard", 0.6, 0.45, 30, R),
        VirtualClusterSpec("advanced", 1.0, 0.80, 15, R),
    ]
    nfs = [
        NFSClusterSpec("standard", 0.8, 1.11e-4, 5 * 1024**3),
        NFSClusterSpec("high", 1.0, 2.08e-4, 5 * 1024**3),
    ]
    return CloudFacility(vm, nfs)


def make_controller(cls=ProvisioningController, budget=40.0, **kwargs):
    model = CapacityModel(streaming_rate=r, chunk_duration=300.0,
                          vm_bandwidth=R)
    tracker = TrackingServer(2, [4, 4], interval_seconds=3600.0)
    broker = Broker(make_facility())
    estimator = DemandEstimator(model, "client-server")
    controller = cls(
        estimator, tracker, broker,
        SLATerms(vm_budget_per_hour=budget), **kwargs
    )
    return controller, tracker


def feed_interval(tracker, channel=0, arrivals=360, upload=2 * r):
    for _ in range(arrivals):
        tracker.record_arrival(channel, 0, upload)
    for _ in range(50):
        tracker.record_transition(channel, 0, 1)
        tracker.record_departure(channel, 1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_paper_first_then_rivals(self):
        assert controller_names() == (
            "paper", "reactive", "adapt", "pid", "mpc"
        )

    @pytest.mark.parametrize("name", list(CONTROLLERS))
    def test_both_flavors_resolve_and_carry_policy_key(self, name):
        single = controller_class(name)
        geo = controller_class(name, geo=True)
        assert single is not geo
        assert single.policy == name
        assert geo.policy == name

    def test_unknown_key_names_registered(self):
        with pytest.raises(KeyError, match="registered: paper, reactive"):
            controller_class("nope")

    def test_geo_flavors_subclass_geo_controller(self):
        from repro.geo.controller import GeoProvisioningController

        for name in CONTROLLERS:
            assert issubclass(
                controller_class(name, geo=True), GeoProvisioningController
            )


# ----------------------------------------------------------------------
# Paper-controller byte-parity through the refactor
# ----------------------------------------------------------------------

class TestPaperParity:
    def test_closed_loop_engine(self):
        from repro.experiments.config import small_scenario
        from repro.experiments.runner import ClosedLoopEngine

        scenario = small_scenario("client-server", horizon_hours=2)
        default = ClosedLoopEngine(scenario).run()
        explicit = ClosedLoopEngine(scenario, controller="paper").run()
        assert default.used_series == explicit.used_series
        assert default.provisioned_series == explicit.provisioned_series
        assert default.vm_cost_series == explicit.vm_cost_series
        assert default.average_quality == explicit.average_quality

    def test_catalog_engine(self):
        from repro.sim.shard import ShardedSimulator
        from repro.workload.catalog import catalog_config

        config = catalog_config(
            num_channels=6, chunks_per_channel=4, horizon_hours=0.5,
            arrival_rate=0.5, num_shards=3, dt=60.0, interval_minutes=10.0,
        )
        with ShardedSimulator(config, jobs=1) as engine:
            default = engine.run()
        with ShardedSimulator(config, jobs=1, controller="paper") as engine:
            explicit = engine.run()
        for name in ("times", "cloud_used", "provisioned", "quality"):
            a, b = getattr(default, name), getattr(explicit, name)
            assert a.tobytes() == b.tobytes(), name
        assert default.vm_cost_series == explicit.vm_cost_series

    def test_geo_catalog_engine(self):
        from repro.sim.shard import make_engine
        from repro.workload.catalog import geo_catalog_config

        config = geo_catalog_config(
            num_channels=6, chunks_per_channel=3, horizon_hours=0.5,
            arrival_rate=0.5, num_shards=3, dt=60.0, interval_minutes=10.0,
            topology="us-eu-ap",
        )
        with make_engine(config, jobs=1) as engine:
            default = engine.run()
        with make_engine(config, jobs=1, controller="paper") as engine:
            explicit = engine.run()
        for name in ("times", "cloud_used", "provisioned", "quality"):
            a, b = getattr(default, name), getattr(explicit, name)
            assert a.tobytes() == b.tobytes(), name
        assert default.epoch_remote_fractions == \
            explicit.epoch_remote_fractions


# ----------------------------------------------------------------------
# Policy state machines: hand-computed traces
# ----------------------------------------------------------------------

class TestReactiveScaler:
    def test_holds_inside_band_retargets_on_breach(self):
        scaler = ReactiveScaler(
            up_threshold=1.1, down_threshold=0.7, headroom=0.2
        )
        assert scaler.update("c", 1.0) == pytest.approx(1.2)  # first sight
        # 1.1 is inside [1.2*0.7, 1.2*1.1] = [0.84, 1.32]: hold.
        assert scaler.update("c", 1.1) == pytest.approx(1.2)
        # 2.0 breaks the upper bound: re-target with headroom.
        assert scaler.update("c", 2.0) == pytest.approx(2.4)
        # 1.5 < 2.4*0.7 = 1.68: scale-down breach, re-target.
        assert scaler.update("c", 1.5) == pytest.approx(1.8)

    def test_keys_are_independent(self):
        scaler = ReactiveScaler()
        scaler.update("a", 10.0)
        assert scaler.update("b", 1.0) == pytest.approx(1.2)

    def test_validates_band(self):
        with pytest.raises(ValueError):
            ReactiveScaler(up_threshold=0.9)
        with pytest.raises(ValueError):
            ReactiveScaler(down_threshold=0.0)


class TestAdaptEstimator:
    def test_level_trend_recurrence(self):
        est = AdaptEstimator(weight=0.5, negative_damping=15.0)
        # First observation seeds the level; no trend yet.
        assert est.update("c", 2.0) == pytest.approx(2.0)
        # level = .5*4 + .5*2 = 3; trend = .5*(3-2) = 0.5; predict 3.5.
        assert est.update("c", 4.0) == pytest.approx(3.5)
        # level = .5*1 + .5*3 = 2; trend = .5*(2-3) + .5*0.5 = -0.25;
        # negative trend damped by 15: predict 2 - 0.25/15.
        assert est.update("c", 1.0) == pytest.approx(2.0 - 0.25 / 15.0)

    def test_prediction_never_negative(self):
        est = AdaptEstimator(weight=1.0, negative_damping=1.0)
        est.update("c", 10.0)
        assert est.update("c", 0.0) >= 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdaptEstimator(weight=0.0)
        with pytest.raises(ValueError):
            AdaptEstimator(negative_damping=0.5)


class TestPIDLoop:
    def test_gain_formula_when_unsaturated(self):
        pid = PIDLoop(kp=0.1, ki=0.1, kd=0.0, min_gain=0.5, max_gain=4.0)
        # e=0.5: output = 1 + .05 + .05 = 1.1, inside bounds.
        assert pid.update(0.5) == pytest.approx(1.1)
        assert pid.integral == pytest.approx(0.5)

    def test_actuation_bounded(self):
        pid = PIDLoop(kp=1.0, ki=1.0, kd=1.0, min_gain=0.5, max_gain=2.0)
        for error in (50.0, -50.0, 3.0, -3.0, 0.0):
            gain = pid.update(error)
            assert 0.5 <= gain <= 2.0

    def test_anti_windup_conditional_integration(self):
        """A long saturated excursion must not charge the integrator."""
        pid = PIDLoop(kp=1.0, ki=1.0, kd=0.0, min_gain=0.5, max_gain=2.0)
        for _ in range(10):
            assert pid.update(5.0) == 2.0  # clamped at max_gain
        assert pid.saturated_steps == 10
        assert pid.integral == 0.0  # never committed while saturated
        # Back to zero error: output snaps to ~1 instead of overshooting.
        assert pid.update(0.0) == pytest.approx(1.0)
        assert pid.saturated_steps == 10

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            PIDLoop(min_gain=0.0)
        with pytest.raises(ValueError):
            PIDLoop(min_gain=2.0, max_gain=1.0)


# ----------------------------------------------------------------------
# Policies composed with the real controller
# ----------------------------------------------------------------------

class TestPoliciesInTheLoop:
    @pytest.mark.parametrize("name", [n for n in CONTROLLERS])
    def test_every_policy_closes_the_loop(self, name):
        controller, tracker = make_controller(controller_class(name))
        controller.bootstrap(0.0, {0: 0.1, 1: 0.05})
        feed_interval(tracker, arrivals=360)
        decision = controller.run_interval(3600.0)
        feed_interval(tracker, arrivals=720)
        controller.run_interval(7200.0)
        assert len(controller.decisions) == 3
        assert decision.hourly_vm_cost <= 40.0 + 1e-9

    def test_pid_escalates_under_persistent_underprovisioning(self):
        """With the budget pinning grants far below demand, the PID sees
        utilization error > 0 every interval and scales the request —
        but never past max_gain times the paper's analysis."""
        pid_ctrl, pid_tracker = make_controller(
            PIDProvisioningController, budget=2.0, pid_max_gain=4.0
        )
        paper_ctrl, paper_tracker = make_controller(
            ProvisioningController, budget=2.0
        )
        for ctrl, tracker in ((pid_ctrl, pid_tracker),
                              (paper_ctrl, paper_tracker)):
            ctrl.bootstrap(0.0, {0: 1.0, 1: 0.0})
            for k in range(1, 4):
                feed_interval(tracker, arrivals=7200)
                ctrl.run_interval(3600.0 * k)
        pid_demand = pid_ctrl.decisions[-1].total_cloud_demand
        paper_demand = paper_ctrl.decisions[-1].total_cloud_demand
        assert pid_demand > paper_demand  # it escalated
        assert pid_demand <= 4.0 * paper_demand + 1e-6  # bounded actuation

    def test_mpc_falls_back_to_greedy_when_lp_infeasible(self):
        """Growing demand under a near-zero budget makes the exact LP
        infeasible; the controller must count the fallback and keep
        producing decisions from the greedy's partial plan."""
        controller, tracker = make_controller(
            MPCProvisioningController, budget=0.001
        )
        controller.bootstrap(0.0, {0: 0.5, 1: 0.0})
        feed_interval(tracker, arrivals=1800)
        controller.run_interval(3600.0)  # seeds the rate history
        assert controller.mpc_lp_fallbacks == 0
        feed_interval(tracker, arrivals=3600)
        decision = controller.run_interval(7200.0)
        assert controller.mpc_lp_fallbacks >= 1
        assert decision.total_cloud_demand > 0.0

    def test_mpc_never_shapes_below_the_analysis(self):
        controller, tracker = make_controller(MPCProvisioningController)
        paper, paper_tracker = make_controller(ProvisioningController)
        for ctrl, trk in ((controller, tracker), (paper, paper_tracker)):
            ctrl.bootstrap(0.0, {0: 0.5, 1: 0.0})
            feed_interval(trk, arrivals=900)
            ctrl.run_interval(3600.0)
            feed_interval(trk, arrivals=1800)
            ctrl.run_interval(7200.0)
        mpc_demand = controller.decisions[-1].demands[0].cloud_demand
        paper_demand = paper.decisions[-1].demands[0].cloud_demand
        assert np.all(mpc_demand >= paper_demand - 1e-9)


# ----------------------------------------------------------------------
# The ablation summary artifact
# ----------------------------------------------------------------------

def _fake_report(tmp_path):
    def outcome(catalog, controller, seed, cost, quality, penalty):
        return types.SimpleNamespace(
            cell=types.SimpleNamespace(params=(
                ("catalog", catalog), ("controller", controller),
                ("seed", seed),
            )),
            metrics={
                "vm_cost_per_hour": cost,
                "average_quality": quality,
                "sla_penalty_dollars": penalty,
                "sla_quality_violations": 1,
                "sla_budget_violations": 0,
            },
        )

    return types.SimpleNamespace(
        scenario="ablation-controllers",
        out_dir=str(tmp_path),
        outcomes=[
            outcome("zipf", "paper", 1, 10.0, 0.99, 0.0),
            outcome("zipf", "paper", 2, 12.0, 0.97, 10.0),
            outcome("zipf", "pid", 1, 14.0, 0.98, 5.0),
            outcome("geo", "paper", 1, 20.0, 0.95, 30.0),
        ],
    )


class TestControllerSummary:
    def test_schema_and_seed_means(self, tmp_path):
        from repro.experiments.controllers import (
            CONTROLLER_SUMMARY_SCHEMA,
            SUMMARY_METRICS,
            summary_table,
            write_controller_summary,
        )

        path = write_controller_summary(_fake_report(tmp_path))
        assert path == tmp_path / "ablation-controllers" / "summary.json"
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-controller-summary"
        assert payload["schema"] == CONTROLLER_SUMMARY_SCHEMA
        assert payload["metrics"] == list(SUMMARY_METRICS)
        # Rows sorted by (catalog, controller); means over seeds.
        keys = [(row["catalog"], row["controller"])
                for row in payload["rows"]]
        assert keys == [("geo", "paper"), ("zipf", "paper"), ("zipf", "pid")]
        zipf_paper = payload["rows"][1]
        assert zipf_paper["seeds"] == 2
        assert zipf_paper["vm_cost_per_hour"] == pytest.approx(11.0)
        assert zipf_paper["sla_penalty_dollars"] == pytest.approx(5.0)

        headers, rows = summary_table(payload)
        assert headers[:2] == ["catalog", "controller"]
        assert len(rows) == 3 and len(rows[0]) == len(headers)

    def test_cell_runner_scores_sla(self):
        from repro.experiments.controllers import run_controller_cell

        metrics = run_controller_cell(
            seed=7, controller="reactive", catalog="zipf",
            num_channels=4, chunks_per_channel=3, horizon_hours=0.25,
            arrival_rate=0.5, dt=60.0, interval_minutes=10.0, num_shards=2,
            mode="client-server",
        )
        for key in ("average_quality", "vm_cost_per_hour",
                    "sla_penalty_dollars", "sla_quality_violations",
                    "sla_budget_violations"):
            assert key in metrics
        assert metrics["sla_penalty_dollars"] >= 0.0

    def test_cell_runner_rejects_unknown_catalog(self):
        from repro.experiments.controllers import run_controller_cell

        with pytest.raises(ValueError, match="unknown catalog shape"):
            run_controller_cell(seed=1, catalog="weird")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCLISurface:
    def test_run_and_catalog_accept_controller(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "--controller", "pid"])
        assert args.controller == "pid"
        args = parser.parse_args(["catalog", "--controller", "mpc"])
        assert args.controller == "mpc"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--controller", "nope"])

    def test_scenarios_json_reports_controller_knob(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "ablation-controllers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["controller"] == list(controller_names())
        assert payload["grid"]["catalog"] == ["zipf", "flash", "geo"]

    def test_scenarios_json_defaults_to_paper(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "catalog-zipf", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["controller"] == "paper"
