#!/usr/bin/env python
"""Closed-loop comparison: client-server vs P2P CloudMedia.

Runs the full system twice — synthetic trace, fluid VoD simulator, hourly
provisioning controller, simulated cloud — once in each delivery mode, and
prints the paper's headline comparison (Figs 4, 5, 10): cloud bandwidth,
streaming quality, and hourly VM cost.

Run:  python examples/p2p_vs_client_server.py          (small scale, ~10 s)
      REPRO_FULL=1 python examples/p2p_vs_client_server.py   (paper scale)
"""

import numpy as np

from repro.api import open_run
from repro.experiments.config import scenario_from_env
from repro.experiments.reporting import downsample, format_table


def main() -> None:
    results = {}
    for mode in ("client-server", "p2p"):
        scenario = scenario_from_env(mode, horizon_hours=12.0)
        print(f"running {mode} scenario "
              f"({scenario.num_channels} channels, "
              f"{scenario.horizon_seconds / 3600:.0f} h)...")
        # Stream the provisioning epochs as they complete (repro.api),
        # then collect the monolithic result for the summary tables.
        with open_run(scenario) as run:
            for epoch in run.epochs():
                print(f"  hour {epoch.t_end / 3600:4.0f}: "
                      f"{epoch.population:4d} viewers, "
                      f"{epoch.provisioned_mbps:5.0f} Mbps reserved, "
                      f"quality {epoch.quality:.3f}")
            results[mode] = run.result()

    cs, p2p = results["client-server"], results["p2p"]

    print("\nHourly series (Mbps, downsampled)")
    hours = downsample([t / 3600 for t in cs.interval_times])
    rows = [
        ["hour"] + [f"{h:.0f}" for h in hours],
        ["C/S reserved"] + [f"{v:.0f}" for v in downsample(cs.provisioned_mbps())],
        ["C/S used"] + [f"{v:.0f}" for v in downsample(cs.used_mbps())],
        ["P2P reserved"] + [f"{v:.0f}" for v in downsample(p2p.provisioned_mbps())],
        ["P2P used"] + [f"{v:.0f}" for v in downsample(p2p.used_mbps())],
    ]
    width = max(len(r) for r in rows)
    for row in rows:
        print("  " + "  ".join(str(c).rjust(8) for c in row))

    print("\nSummary (paper Figs 4/5/10 shape)")
    print(
        format_table(
            ["metric", "client-server", "p2p"],
            [
                [
                    "avg streaming quality",
                    cs.average_quality,
                    p2p.average_quality,
                ],
                [
                    "mean cloud used (Mbps)",
                    float(np.mean(cs.used_mbps())),
                    float(np.mean(p2p.used_mbps())),
                ],
                [
                    "mean reserved (Mbps)",
                    float(np.mean(cs.provisioned_mbps())),
                    float(np.mean(p2p.provisioned_mbps())),
                ],
                [
                    "mean VM cost ($/h)",
                    cs.mean_vm_cost_per_hour,
                    p2p.mean_vm_cost_per_hour,
                ],
                [
                    "storage cost ($/day)",
                    cs.cost_report.hourly_storage_cost * 24,
                    p2p.cost_report.hourly_storage_cost * 24,
                ],
            ],
        )
    )
    savings = 1.0 - p2p.mean_vm_cost_per_hour / max(cs.mean_vm_cost_per_hour, 1e-9)
    print(f"\nP2P cuts the VM bill by {100 * savings:.0f}% at a quality cost of "
          f"{cs.average_quality - p2p.average_quality:+.3f} — the paper's "
          "'hybrid P2P + cloud' conclusion.")


if __name__ == "__main__":
    main()
