#!/usr/bin/env python
"""Geo-distributed clouds — the paper's Section VII future work, built out.

Three regions (us-east, eu-west, ap-south) each host a Table II-style
cluster trio at regionally tinted prices. Viewer demand follows each
region's evening (time zones shift the flash crowds), so regions peak at
different wall-clock hours — exactly the situation where serving a peak
region from an off-peak region's idle VMs is attractive, if the latency
(utility) and egress (cost) penalties allow it.

The example sweeps one UTC day hour by hour, solving the multi-region
allocation each hour, and reports how much traffic crosses regions and
what the latency/egress tradeoff costs.  It closes with the same
economics in the *closed loop*: the multi-region catalog engine driven
through ``repro.api`` — streamed epoch by epoch, checkpointed at the
midpoint and resumed byte-identically under a different worker count.

Run:  python examples/geo_distributed_cloud.py
"""

import numpy as np

from repro.cloud.cluster import VirtualClusterSpec
from repro.experiments.config import PAPER, paper_capacity_model
from repro.experiments.reporting import format_table
from repro.geo.allocation import GeoVMProblem, greedy_geo_allocation, lp_geo_allocation
from repro.geo.region import GeoTopology, RegionSpec
from repro.queueing.capacity import solve_channel_capacity
from repro.vod.channel import default_behaviour_matrix
from repro.workload.diurnal import DiurnalPattern

R = PAPER.vm_bandwidth


def region_clusters(price_factor: float):
    rows = [("standard", 0.6, 0.45), ("medium", 0.8, 0.70), ("advanced", 1.0, 0.80)]
    return tuple(
        VirtualClusterSpec(name, utility, price * price_factor, 10, R)
        for name, utility, price in rows
    )


def build_topology() -> GeoTopology:
    regions = [
        RegionSpec("us-east", region_clusters(1.00)),
        RegionSpec("eu-west", region_clusters(1.10)),
        RegionSpec("ap-south", region_clusters(0.85)),
    ]
    latency = {
        ("us-east", "eu-west"): 80.0,
        ("us-east", "ap-south"): 220.0,
        ("eu-west", "ap-south"): 150.0,
    }
    egress = {
        ("us-east", "eu-west"): 0.02,
        ("us-east", "ap-south"): 0.05,
        ("eu-west", "ap-south"): 0.04,
    }
    return GeoTopology(regions, latency, egress, latency_halflife_ms=200.0)


def regional_demand(hour_utc: float, tz_offset: float, base_rate: float, model, behaviour):
    """Per-chunk cloud demand of one region at a UTC hour."""
    local = DiurnalPattern()
    factor = local.factor(((hour_utc + tz_offset) % 24) * 3600.0)
    result = solve_channel_capacity(model, behaviour, base_rate * factor, alpha=0.8)
    return {i: float(d) for i, d in enumerate(result.cloud_demand)}


def main() -> None:
    topo = build_topology()
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(10)
    offsets = {"us-east": -5.0, "eu-west": 1.0, "ap-south": 5.5}
    base_rate = 0.15  # users/second per region at the daily mean

    rows = []
    remote_fractions = []
    for hour in range(0, 24, 2):
        demands = {
            region: regional_demand(hour, off, base_rate, model, behaviour)
            for region, off in offsets.items()
        }
        problem = GeoVMProblem(
            topology=topo, demands=demands, vm_bandwidth=R, budget_per_hour=150.0
        )
        plan = greedy_geo_allocation(problem)
        remote_fractions.append(plan.remote_fraction())
        rows.append(
            [
                hour,
                f"{sum(sum(d.values()) for d in demands.values()) * 8 / 1e6 / 10:.0f}",
                f"{plan.cost_per_hour:.1f}",
                f"{100 * plan.remote_fraction():.0f}%",
                "yes" if plan.feasible else "NO",
            ]
        )
    print(format_table(
        ["UTC hour", "demand (VMs)", "cost ($/h)", "served remotely", "feasible"],
        rows,
        title="One UTC day, three regions with shifted flash crowds",
    ))

    # A single peak hour, greedy vs LP.
    demands = {
        region: regional_demand(20, off, base_rate, model, behaviour)
        for region, off in offsets.items()
    }
    problem = GeoVMProblem(
        topology=topo, demands=demands, vm_bandwidth=R, budget_per_hour=150.0
    )
    greedy = greedy_geo_allocation(problem)
    lp = lp_geo_allocation(problem)
    print("\nPeak hour, greedy vs LP optimum:")
    print(format_table(
        ["solver", "objective", "cost ($/h)", "remote share"],
        [
            ["greedy", greedy.objective, greedy.cost_per_hour,
             f"{100 * greedy.remote_fraction():.0f}%"],
            ["LP", lp.objective, lp.cost_per_hour,
             f"{100 * lp.remote_fraction():.0f}%"],
        ],
    ))
    print(
        f"\nAcross the day, {100 * float(np.mean(remote_fractions)):.1f}% of "
        "VM-hours were served cross-region (peaking at "
        f"{100 * float(np.max(remote_fractions)):.0f}% during flash crowds) — "
        "idle off-peak capacity absorbing the rotating demand. The LP shows "
        "the headroom a smarter-than-greedy policy could exploit."
    )

    # ------------------------------------------------------------------
    # The same economics, closed loop: the multi-region catalog engine
    # through repro.api — streamed, checkpointed at the midpoint, and
    # resumed byte-identically (the long-horizon-run workflow).
    # ------------------------------------------------------------------
    import tempfile
    from pathlib import Path

    from repro.api import EngineConfig, open_run, resume
    from repro.sim.shard import summarize_catalog
    from repro.workload.catalog import geo_catalog_config

    config = geo_catalog_config(
        topology="us-eu", num_channels=6, chunks_per_channel=4,
        horizon_hours=0.5, arrival_rate=0.5, num_shards=3, dt=60.0,
        interval_minutes=10.0,
    )
    print("\nClosed-loop geo catalog (us-eu, CI scale) via repro.api:")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "midpoint.ckpt"
        with open_run(EngineConfig(spec=config, workers=2)) as run:
            for epoch in run.epochs():
                print(f"  epoch {epoch.index}/{epoch.epochs_total}: "
                      f"{epoch.population} viewers, "
                      f"vm ${epoch.vm_cost_per_hour:.2f}/h")
                if epoch.index == run.epochs_total // 2:
                    run.checkpoint(ckpt)
                    print(f"  checkpointed at epoch {epoch.index} "
                          f"({ckpt.stat().st_size / 1e6:.1f} MB)")
            finished = summarize_catalog(run.result())
        with resume(ckpt, workers=1) as tail:  # other worker count: same bytes
            resumed = summarize_catalog(tail.result())
    assert resumed == finished, "resume must be byte-identical"
    print(
        f"  -> resumed run matches: remote fraction "
        f"{finished['mean_remote_fraction']:.3f}, egress "
        f"${finished['egress_cost_per_hour']:.2f}/h, latency-adjusted "
        f"quality {finished['latency_adjusted_quality']:.3f}"
    )


if __name__ == "__main__":
    main()
