#!/usr/bin/env python
"""Flash crowds: watch the controller chase a diurnal demand wave.

The paper's synthetic workload has two daily flash crowds (noon and
evening). This example runs a one-day client-server scenario and prints,
hour by hour, the measured arrivals, the provisioned cloud bandwidth, the
actually-used bandwidth, and the streaming quality — making the
last-interval predictor's lag and the provisioning headroom visible.

It then re-runs the same day with an EWMA predictor (the registry's
``ewma`` key, an ``EngineConfig.predictor`` away) to show the extension
the paper leaves as future work.  Both runs go through ``repro.api`` —
one typed config, one ``open_run`` call.

Run:  python examples/flash_crowd_provisioning.py
"""

import numpy as np

from repro.api import EngineConfig, open_run
from repro.experiments.config import small_scenario
from repro.experiments.reporting import format_table


def hour_table(result) -> str:
    rows = []
    quality_by_hour = {}
    times, quality = result.simulation.quality.quality_series()
    for t, q in zip(times, quality):
        quality_by_hour.setdefault(int(t // 3600), []).append(q)
    for k, t in enumerate(result.interval_times):
        hour = int(t // 3600) - 1
        rows.append(
            [
                hour + 1,
                result.population_series[k],
                f"{result.provisioned_mbps()[k]:.0f}",
                f"{result.used_mbps()[k]:.0f}",
                f"{np.mean(quality_by_hour.get(hour, [1.0])):.3f}",
            ]
        )
    return format_table(
        ["hour", "viewers", "reserved (Mbps)", "used (Mbps)", "quality"], rows
    )


def main() -> None:
    import dataclasses

    scenario = small_scenario(
        "client-server", horizon_hours=24.0, target_population=300
    )
    # The default CI-sized cluster saturates at this population; give the
    # cloud enough headroom that the provisioning dynamics stay visible.
    scenario = dataclasses.replace(scenario, cluster_scale=1.0)
    print("One simulated day, last-interval predictor (the paper's rule):\n")
    with open_run(EngineConfig(spec=scenario)) as run:
        base = run.result()
    print(hour_table(base))
    print(
        f"\n  day average: quality {base.average_quality:.3f}, "
        f"VM cost ${base.mean_vm_cost_per_hour:.2f}/h"
    )

    print("\nSame day, EWMA predictor (beta = 0.5) — smoother scaling:\n")
    with open_run(EngineConfig(spec=scenario, predictor="ewma")) as run:
        ewma = run.result()
    print(hour_table(ewma))
    print(
        f"\n  day average: quality {ewma.average_quality:.3f}, "
        f"VM cost ${ewma.mean_vm_cost_per_hour:.2f}/h"
    )

    print(
        "\nNote how reservations swell into the noon and evening crowds and "
        "drain overnight; the EWMA variant reacts more slowly but rides out "
        "single-interval spikes."
    )


if __name__ == "__main__":
    main()
