#!/usr/bin/env python
"""Storage and VM rental planning on the paper's full catalogue.

Builds the complete paper-scale demand profile (20 channels x 20 chunks,
Zipf popularity, Section IV analysis), then solves both Section V
optimization problems with the paper's heuristics and compares them
against the LP bounds:

* storage rental (Eqn (6)) over the Table III NFS clusters under B_S = $1/h;
* VM configuration (Eqn (7)) over the Table II virtual clusters under
  B_M = $100/h, including the consecutive-chunk VM packing.

Run:  python examples/storage_planning.py
"""


from repro.core.packing import pack_allocations
from repro.core.storage_rental import (
    StorageProblem,
    greedy_storage_rental,
    lp_storage_bound,
)
from repro.core.vm_allocation import VMProblem, greedy_vm_allocation, lp_vm_allocation
from repro.experiments.config import (
    PAPER,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_vm_clusters,
)
from repro.experiments.reporting import format_table, mbps
from repro.p2p.contribution import solve_p2p_channel_capacity
from repro.queueing.capacity import solve_channel_capacity
from repro.vod.channel import default_behaviour_matrix
from repro.workload.zipf import assign_channel_rates


def build_demands(
    total_rate: float = 0.4,
    mode: str = "client-server",
    num_channels: int = PAPER.num_channels,
):
    """Per-chunk cloud demand for a catalogue of paper-style channels."""
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(PAPER.chunks_per_channel)
    rates = assign_channel_rates(total_rate, num_channels, 0.8)
    demands = {}
    for channel, rate in enumerate(rates):
        if mode == "p2p":
            result = solve_p2p_channel_capacity(
                model, behaviour, float(rate),
                peer_upload=0.9 * model.streaming_rate, alpha=0.8,
            )
            deltas = result.cloud_demand
        else:
            deltas = solve_channel_capacity(
                model, behaviour, float(rate), alpha=0.8
            ).cloud_demand
        for i, delta in enumerate(deltas):
            demands[(channel, i)] = float(delta)
    return model, demands


def main() -> None:
    model, demands = build_demands()
    total = sum(demands.values())
    print(
        f"catalogue: {PAPER.num_channels} channels x "
        f"{PAPER.chunks_per_channel} chunks, total cloud demand "
        f"{mbps(total):.0f} Mbps\n"
    )

    # ------------------------------------------------------------------
    # Storage rental.
    # ------------------------------------------------------------------
    storage_problem = StorageProblem(
        demands=demands,
        chunk_size_bytes=model.chunk_size_bytes,
        clusters=paper_nfs_clusters(),
        budget_per_hour=PAPER.storage_budget_per_hour,
    )
    plan = greedy_storage_rental(storage_problem)
    bound = lp_storage_bound(storage_problem)
    print("Storage rental (Eqn (6)) — greedy heuristic vs LP bound")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["chunks placed", len(plan.placement)],
                ["feasible", plan.feasible],
                ["objective (u_f * Delta)", plan.objective],
                ["LP relaxation bound", bound],
                ["optimality gap", f"{100 * (1 - plan.objective / bound):.2f}%"],
                ["cost ($/h)", f"{plan.cost_per_hour:.5f}"],
                ["cost ($/day)", f"{24 * plan.cost_per_hour:.4f}"],
            ],
        )
    )
    loads = plan.cluster_loads()
    print(f"  placement: {loads}")
    print(
        "  note: with Table III prices the 'standard' cluster dominates on "
        "utility-per-dollar,\n  so the paper's u/p-sorted heuristic fills it "
        "first even though the budget is slack —\n  the LP bound shows the "
        "~20% utility left on the table (see the ablation bench).\n"
    )

    # ------------------------------------------------------------------
    # VM configuration + packing. P2P demands over a 6-channel slice are
    # used here because their Delta_i are genuinely fractional in VM
    # units (client-server demands are exact multiples of R), which is
    # what exercises VM sharing. The full 20-channel client-server
    # catalogue needs >= one VM per chunk (400 VMs) and is *infeasible*
    # against Table II's 150 — the paper's "budget should be increased"
    # signal, which the plan's feasible flag reports.
    # ------------------------------------------------------------------
    _, p2p_demands = build_demands(
        total_rate=0.3, mode="p2p", num_channels=6
    )
    vm_problem = VMProblem(
        demands=p2p_demands,
        vm_bandwidth=model.vm_bandwidth,
        clusters=paper_vm_clusters(),
        budget_per_hour=PAPER.vm_budget_per_hour,
    )
    vm_plan = greedy_vm_allocation(vm_problem)
    lp_plan = lp_vm_allocation(vm_problem)
    packing = pack_allocations(vm_plan.allocations)
    print("VM configuration (Eqn (7)) — greedy heuristic vs LP optimum")
    print(
        format_table(
            ["quantity", "greedy", "LP optimum"],
            [
                ["feasible", vm_plan.feasible, lp_plan.feasible],
                ["objective (u~_v * z)", vm_plan.objective, lp_plan.objective],
                ["cost ($/h)", vm_plan.cost_per_hour, lp_plan.cost_per_hour],
                [
                    "VMs rented",
                    sum(vm_plan.integer_vm_counts().values()),
                    sum(lp_plan.integer_vm_counts().values()),
                ],
            ],
        )
    )
    print(
        f"\n  packing: {packing.total_vms} VMs, {packing.shared_vms} shared, "
        f"{packing.cross_channel_vms} serving multiple channels "
        f"(mean load {packing.mean_load:.2f})"
    )
    print(
        "  shared VMs carry consecutive chunks of one channel whenever "
        "possible, minimizing VM switches during playback (footnote 3)."
    )

    # ------------------------------------------------------------------
    # The same optimizers inside the closed loop: stream a small catalog
    # run through repro.api and watch each epoch's VM plan go by.
    # ------------------------------------------------------------------
    from repro.api import EngineConfig, open_run
    from repro.workload.catalog import catalog_config

    config = catalog_config(
        num_channels=8, chunks_per_channel=4, horizon_hours=0.5,
        arrival_rate=0.5, num_shards=4, dt=60.0, interval_minutes=10.0,
    )
    print("\nLive rental planning (8-channel catalog, repro.api stream):")
    with open_run(EngineConfig(spec=config)) as run:
        for epoch in run.epochs():
            decided = ("replanned" if epoch.decision is not None
                       and epoch.decision.storage_plan is not None
                       else "kept")
            print(f"  epoch {epoch.index}/{epoch.epochs_total}: "
                  f"{epoch.provisioned_mbps:.0f} Mbps reserved, "
                  f"vm ${epoch.vm_cost_per_hour:.2f}/h, "
                  f"storage plan {decided}")
        result = run.result()
    report = result.cost_report
    print(f"  -> billed: ${report.hourly_vm_cost:.2f}/h VMs, "
          f"${report.hourly_storage_cost * 24:.4f}/day storage")


if __name__ == "__main__":
    main()
