#!/usr/bin/env python
"""Quickstart: size the cloud for one VoD channel, client-server vs P2P.

This walks the paper's analytical pipeline (Section IV) on a single
channel with the paper's physical constants:

1. build a viewing-behaviour (chunk-transfer) matrix;
2. solve the Jackson-network traffic equations for per-chunk arrival rates;
3. size every chunk queue so the mean retrieval time is at most T0;
4. in P2P mode, estimate the peers' rarest-first upload contribution and
   the cloud supplement;
5. close the loop live: stream a small end-to-end run, epoch by epoch,
   through ``repro.api`` (the session surface all of the above feeds).

Run:  python examples/quickstart.py
"""


from repro.experiments.config import paper_capacity_model
from repro.experiments.reporting import format_table, mbps
from repro.p2p.contribution import solve_p2p_channel_capacity
from repro.queueing.capacity import solve_channel_capacity
from repro.queueing.transitions import mixture_matrix, sequential_matrix, uniform_jump_matrix


def main() -> None:
    model = paper_capacity_model()
    num_chunks = 20  # a 100-minute video in 5-minute chunks
    # 40% disciplined sequential viewers, 60% VCR-happy ones.
    behaviour = mixture_matrix(
        [
            sequential_matrix(num_chunks, continue_prob=0.92),
            uniform_jump_matrix(num_chunks, continue_prob=0.7, jump_prob=0.2),
        ],
        [0.4, 0.6],
    )
    arrival_rate = 0.12  # users/second into this channel (a busy evening)

    print("CloudMedia quickstart: one channel, paper constants")
    print(f"  r  = {model.streaming_rate / 1e3:.0f} KB/s (400 kbps)")
    print(f"  T0 = {model.chunk_duration:.0f} s  (chunk = "
          f"{model.chunk_size_bytes / 1e6:.0f} MB)")
    print(f"  R  = {mbps(model.vm_bandwidth):.0f} Mbps per VM")
    print(f"  Lambda = {arrival_rate} users/s, alpha = 0.8\n")

    # ------------------------------------------------------------------
    # Client-server: all demand lands on the cloud.
    # ------------------------------------------------------------------
    cs = solve_channel_capacity(model, behaviour, arrival_rate, alpha=0.8)
    print("Client-server capacity demand (Section IV-B)")
    rows = [
        [
            i,
            f"{lam:.4f}",
            f"{en:.1f}",
            int(m),
            f"{mbps(band):.0f}",
        ]
        for i, (lam, en, m, band) in enumerate(
            zip(
                cs.traffic.arrival_rates,
                cs.expected_in_system,
                cs.servers,
                cs.upload_bandwidth,
            )
        )
    ]
    print(format_table(
        ["chunk", "lambda_i (1/s)", "E[n_i]", "m_i", "Delta_i (Mbps)"], rows
    ))
    print(
        f"\n  total: {cs.total_servers} queueing servers, "
        f"{mbps(cs.total_bandwidth):.0f} Mbps from the cloud, "
        f"~{cs.expected_population:.0f} concurrent viewers\n"
    )

    # ------------------------------------------------------------------
    # P2P: peers upload to each other, the cloud supplements.
    # ------------------------------------------------------------------
    for ratio in (0.5, 0.9, 1.2):
        peer_upload = ratio * model.streaming_rate
        p2p = solve_p2p_channel_capacity(
            model, behaviour, arrival_rate, peer_upload=peer_upload, alpha=0.8
        )
        print(
            f"P2P with mean peer upload = {ratio:.1f} x streaming rate: "
            f"cloud {mbps(p2p.total_cloud_demand):7.1f} Mbps, "
            f"peers {mbps(p2p.total_peer_bandwidth):7.1f} Mbps "
            f"(offload {100 * p2p.peer_offload_ratio:.0f}%)"
        )
    print(
        "\nTakeaway: the same playback target needs far less cloud capacity "
        "once peer upload approaches the streaming rate — the premise of "
        "the paper's P2P + cloud design."
    )

    # ------------------------------------------------------------------
    # The closed loop, live: trace -> simulator -> controller -> cloud,
    # streamed one provisioning epoch at a time through repro.api.
    # ------------------------------------------------------------------
    from repro.api import open_run
    from repro.experiments.config import small_scenario

    print("\nClosed loop (2 simulated hours, p2p, CI scale) via repro.api:")
    with open_run(small_scenario("p2p", horizon_hours=2.0)) as run:
        for epoch in run.epochs():
            print(
                f"  epoch {epoch.index}/{epoch.epochs_total}: "
                f"{epoch.arrivals} arrivals, {epoch.population} viewers, "
                f"{epoch.provisioned_mbps:.0f} Mbps reserved, "
                f"quality {epoch.quality:.3f}"
            )
        result = run.result()
    print(
        f"  -> day-fraction average quality {result.average_quality:.3f} "
        f"at ${result.mean_vm_cost_per_hour:.2f}/h VM spend"
    )


if __name__ == "__main__":
    main()
